package server

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"deltanet/internal/bitset"
	"deltanet/internal/check"
	"deltanet/internal/core"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
)

// startServer returns a running server, its address, and a cleanup func.
func startServer(t *testing.T, opts ...Option) (*Server, string, func()) {
	t.Helper()
	s := New(opts...)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(l) }()
	cleanup := func() {
		if err := s.Close(); err != nil && !strings.Contains(err.Error(), "use of closed") {
			t.Errorf("close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}
	return s, l.Addr().String(), cleanup
}

// client is a tiny synchronous protocol client for tests.
type client struct {
	conn net.Conn
	r    *bufio.Scanner
}

func dial(t *testing.T, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return &client{conn: conn, r: bufio.NewScanner(conn)}
}

func (c *client) roundTrip(t *testing.T, req string) string {
	t.Helper()
	if _, err := fmt.Fprintln(c.conn, req); err != nil {
		t.Fatal(err)
	}
	if !c.r.Scan() {
		t.Fatalf("no response to %q: %v", req, c.r.Err())
	}
	return c.r.Text()
}

func (c *client) close() { c.conn.Close() }

func TestProtocolSession(t *testing.T) {
	_, addr, cleanup := startServer(t)
	defer cleanup()
	c := dial(t, addr)
	defer c.close()

	if got := c.roundTrip(t, "node s1"); got != "ok node 0" {
		t.Fatalf("node: %q", got)
	}
	if got := c.roundTrip(t, "node s2"); got != "ok node 1" {
		t.Fatalf("node: %q", got)
	}
	if got := c.roundTrip(t, "link 0 1"); got != "ok link 0" {
		t.Fatalf("link: %q", got)
	}
	if got := c.roundTrip(t, "I 1 0 0 0 1000 10"); !strings.HasPrefix(got, "ok atoms=") {
		t.Fatalf("insert: %q", got)
	}
	if got := c.roundTrip(t, "stats"); !strings.HasPrefix(got, "ok stats rules=1 atoms=2 links=1 nodes=2 watch=0 pending=0 upd=1 rskip=0 ix=") {
		t.Fatalf("stats: %q", got)
	}
	if got := c.roundTrip(t, "reach 0 1"); got != "ok reach 1" {
		t.Fatalf("reach: %q", got)
	}
	if got := c.roundTrip(t, "whatif 0"); !strings.HasPrefix(got, "ok whatif atoms=1") {
		t.Fatalf("whatif: %q", got)
	}
	if got := c.roundTrip(t, "R 1"); !strings.HasPrefix(got, "ok atoms=") {
		t.Fatalf("remove: %q", got)
	}
	if got := c.roundTrip(t, "stats"); !strings.HasPrefix(got, "ok stats rules=0 atoms=2 links=1 nodes=2 watch=0 pending=0 upd=2 rskip=0 ix=") {
		t.Fatalf("stats after remove: %q", got)
	}
}

func TestLoopReportedOverWire(t *testing.T) {
	_, addr, cleanup := startServer(t)
	defer cleanup()
	c := dial(t, addr)
	defer c.close()
	c.roundTrip(t, "node a")
	c.roundTrip(t, "node b")
	c.roundTrip(t, "link 0 1") // link 0: a->b
	c.roundTrip(t, "link 1 0") // link 1: b->a
	if got := c.roundTrip(t, "I 1 0 0 0 100 1"); !strings.Contains(got, "loops=0") {
		t.Fatalf("first insert: %q", got)
	}
	got := c.roundTrip(t, "I 2 1 1 0 100 1")
	if !strings.Contains(got, "loops=1") || !strings.Contains(got, "loop 0:100") {
		t.Fatalf("loop not reported: %q", got)
	}
}

func TestProtocolErrors(t *testing.T) {
	_, addr, cleanup := startServer(t)
	defer cleanup()
	c := dial(t, addr)
	defer c.close()
	cases := []string{
		"bogus",
		"node",
		"link 0 1",       // nodes don't exist yet
		"I 1 9 0 0 10 1", // unknown node
		"I 1",            // arity
		"I x 0 0 0 10 1", // non-numeric
		"R",              // arity
		"R x",            // non-numeric
		"R 42",           // unknown rule
		"reach 0",        // arity
		"whatif 99",      // unknown link
	}
	for _, req := range cases {
		if got := c.roundTrip(t, req); !strings.HasPrefix(got, "err") {
			t.Fatalf("%q -> %q, want err", req, got)
		}
	}
	// The connection survives all errors.
	if got := c.roundTrip(t, "stats"); !strings.HasPrefix(got, "ok stats") {
		t.Fatalf("stats after errors: %q", got)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr, cleanup := startServer(t)
	defer cleanup()

	// Topology set up by one client.
	setup := dial(t, addr)
	setup.roundTrip(t, "node hub")
	for i := 1; i <= 4; i++ {
		setup.roundTrip(t, fmt.Sprintf("node n%d", i))
		setup.roundTrip(t, fmt.Sprintf("link 0 %d", i))
	}
	setup.close()

	// Several clients insert disjoint rule ranges concurrently.
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := dial(t, addr)
			defer c.close()
			for i := 0; i < 50; i++ {
				id := w*1000 + i
				lo := uint64(w)<<24 | uint64(i)<<8
				req := fmt.Sprintf("I %d 0 %d %d %d %d", id, w, lo, lo+256, i)
				if _, err := fmt.Fprintln(c.conn, req); err != nil {
					errs <- err.Error()
					return
				}
				if !c.r.Scan() {
					errs <- "no response"
					return
				}
				if resp := c.r.Text(); !strings.HasPrefix(resp, "ok") {
					errs <- resp
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	final := dial(t, addr)
	defer final.close()
	got := final.roundTrip(t, "stats")
	if !strings.Contains(got, "rules=200") {
		t.Fatalf("final stats: %q", got)
	}
}

// sendBatch writes a "B <n>" request with the given lines and returns the
// single response line.
func (c *client) sendBatch(t *testing.T, lines []string) string {
	t.Helper()
	if _, err := fmt.Fprintf(c.conn, "B %d\n%s\n", len(lines), strings.Join(lines, "\n")); err != nil {
		t.Fatal(err)
	}
	if !c.r.Scan() {
		t.Fatalf("no batch response: %v", c.r.Err())
	}
	return c.r.Text()
}

func TestBatchCommand(t *testing.T) {
	_, addr, cleanup := startServer(t)
	defer cleanup()
	c := dial(t, addr)
	defer c.close()

	c.roundTrip(t, "node a")
	c.roundTrip(t, "node b")
	c.roundTrip(t, "link 0 1") // link 0: a->b
	c.roundTrip(t, "link 1 0") // link 1: b->a

	// A batch that closes a loop reports it once, on one line.
	got := c.sendBatch(t, []string{
		"I 1 0 0 0 100 1",
		"I 2 1 1 0 100 1",
	})
	if !strings.HasPrefix(got, "ok batch n=2") || !strings.Contains(got, "loops=1") ||
		!strings.Contains(got, "loop 0:100") {
		t.Fatalf("batch response: %q", got)
	}
	if got := c.roundTrip(t, "stats"); !strings.Contains(got, "rules=2") {
		t.Fatalf("stats after batch: %q", got)
	}

	// Mixed insert/remove batch, including an intra-batch insert+remove.
	got = c.sendBatch(t, []string{
		"R 2",
		"I 3 0 0 200 300 1",
		"R 3",
	})
	if !strings.HasPrefix(got, "ok batch n=3") || !strings.Contains(got, "loops=0") {
		t.Fatalf("mixed batch response: %q", got)
	}
	if got := c.roundTrip(t, "stats"); !strings.Contains(got, "rules=1") {
		t.Fatalf("stats after mixed batch: %q", got)
	}
}

func TestBatchAtomicityOverWire(t *testing.T) {
	_, addr, cleanup := startServer(t)
	defer cleanup()
	c := dial(t, addr)
	defer c.close()
	c.roundTrip(t, "node a")
	c.roundTrip(t, "node b")
	c.roundTrip(t, "link 0 1")

	// Second line removes an unknown rule: nothing must be applied.
	got := c.sendBatch(t, []string{"I 1 0 0 0 100 1", "R 99"})
	if !strings.HasPrefix(got, "err") {
		t.Fatalf("bad batch accepted: %q", got)
	}
	if got := c.roundTrip(t, "stats"); !strings.Contains(got, "rules=0") {
		t.Fatalf("batch partially applied: %q", got)
	}

	// Parse errors name the offending line and also apply nothing.
	got = c.sendBatch(t, []string{"I 1 0 0 0 100 1", "bogus line here"})
	if !strings.HasPrefix(got, "err batch line 2") {
		t.Fatalf("parse error: %q", got)
	}
	if got := c.sendBatch(t, []string{"I 1 9 0 0 100 1"}); !strings.HasPrefix(got, "err batch line 1") {
		t.Fatalf("unknown node in batch: %q", got)
	}
	// A bad batch header leaves the body undelimited, so the server must
	// answer err and close the connection rather than risk executing body
	// lines as individual commands.
	for _, req := range []string{"B", "B 0", "B -3", "B x", "B 9999999"} {
		bad := dial(t, addr)
		if got := bad.roundTrip(t, req); !strings.HasPrefix(got, "err") {
			t.Fatalf("%q -> %q, want err", req, got)
		}
		// Anything sent after the bad header must not execute: the
		// connection is closed, not resynced.
		fmt.Fprintln(bad.conn, "I 7 0 0 0 100 1")
		if bad.r.Scan() {
			t.Fatalf("%q: connection stayed open: %q", req, bad.r.Text())
		}
		bad.close()
	}
	// The original connection (which never sent a bad header) still works,
	// and the stray I line above was never applied.
	if got := c.roundTrip(t, "stats"); !strings.Contains(got, "rules=0") {
		t.Fatalf("stats after errors: %q", got)
	}
}

// TestBatchBodySizeCap: a batch body larger than the aggregate byte cap is
// rejected and the connection closed, bounding what one client can make
// the server buffer.
func TestBatchBodySizeCap(t *testing.T) {
	_, addr, cleanup := startServer(t)
	defer cleanup()
	c := dial(t, addr)
	defer c.close()

	fmt.Fprintln(c.conn, "B 10")
	junk := strings.Repeat("x", 512<<10)
	for i := 0; i < 9; i++ {
		if _, err := fmt.Fprintln(c.conn, junk); err != nil {
			break // server may already have hung up; the response check below decides
		}
	}
	if !c.r.Scan() {
		t.Fatalf("no response: %v", c.r.Err())
	}
	if got := c.r.Text(); !strings.Contains(got, "exceeds") {
		t.Fatalf("oversized body: %q", got)
	}
	if c.r.Scan() {
		t.Fatalf("connection stayed open: %q", c.r.Text())
	}
}

// TestCloseIdempotent: a second Close must not panic and must return nil
// (regression: it used to re-close the shutdown channel).
func TestCloseIdempotent(t *testing.T) {
	s := New()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(l) }()
	if err := s.Close(); err != nil && !strings.Contains(err.Error(), "use of closed") {
		t.Fatalf("first close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestConcurrentReaders: read-only requests from many connections proceed
// while mutations interleave; run under -race this also exercises the
// RWMutex split.
func TestConcurrentReaders(t *testing.T) {
	_, addr, cleanup := startServer(t)
	defer cleanup()
	setup := dial(t, addr)
	setup.roundTrip(t, "node a")
	setup.roundTrip(t, "node b")
	setup.roundTrip(t, "link 0 1")
	setup.roundTrip(t, "I 1 0 0 0 1000 1")
	setup.close()

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := dial(t, addr)
			defer c.close()
			for i := 0; i < 100; i++ {
				for _, req := range []string{"stats", "reach 0 1", "whatif 0"} {
					if _, err := fmt.Fprintln(c.conn, req); err != nil {
						errs <- err.Error()
						return
					}
					if !c.r.Scan() || !strings.HasPrefix(c.r.Text(), "ok") {
						errs <- "read request failed: " + c.r.Text()
						return
					}
				}
			}
		}()
	}
	writer := dial(t, addr)
	defer writer.close()
	for i := 2; i < 40; i++ {
		lo := uint64(i) * 100
		req := fmt.Sprintf("I %d 0 0 %d %d 1", i, lo, lo+50)
		if got := writer.roundTrip(t, req); !strings.HasPrefix(got, "ok") {
			t.Fatalf("writer: %q", got)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestQuitClosesConnection(t *testing.T) {
	_, addr, cleanup := startServer(t)
	defer cleanup()
	c := dial(t, addr)
	defer c.close()
	fmt.Fprintln(c.conn, "quit")
	if c.r.Scan() {
		t.Fatalf("got response after quit: %q", c.r.Text())
	}
}

func TestPreloadedServer(t *testing.T) {
	s := New()
	a := s.Graph().AddNode("a")
	b := s.Graph().AddNode("b")
	l := s.Graph().AddLink(a, b)
	if err := s.Network().Restore([]core.Rule{{
		ID: 1, Source: a, Link: l,
		Match: ipnet.Interval{Lo: 0, Hi: 500}, Priority: 1,
	}}); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	defer s.Close()
	c := dial(t, ln.Addr().String())
	defer c.close()
	if got := c.roundTrip(t, "stats"); !strings.Contains(got, "rules=1") {
		t.Fatalf("preload missing: %q", got)
	}
}

// TestWatchRegistration: W registers standing invariants, unwatch removes
// them, stats reports the count, bad specs error.
func TestWatchRegistration(t *testing.T) {
	_, addr, cleanup := startServer(t)
	defer cleanup()
	c := dial(t, addr)
	defer c.close()

	c.roundTrip(t, "node a")
	c.roundTrip(t, "node b")
	c.roundTrip(t, "node c")
	c.roundTrip(t, "link 0 1") // a->b
	c.roundTrip(t, "link 1 2") // b->c

	// Empty data plane: reachability is violated, loop freedom holds.
	if got := c.roundTrip(t, "W reach 0 2"); got != "ok watch 0 violated" {
		t.Fatalf("W reach: %q", got)
	}
	if got := c.roundTrip(t, "W loopfree"); got != "ok watch 1 holds" {
		t.Fatalf("W loopfree: %q", got)
	}
	if got := c.roundTrip(t, "W waypoint 0 2 1"); got != "ok watch 2 holds" {
		t.Fatalf("W waypoint: %q", got)
	}
	if got := c.roundTrip(t, "W isolated 0 2"); got != "ok watch 3 holds" {
		t.Fatalf("W isolated: %q", got)
	}
	if got := c.roundTrip(t, "W blackholefree"); got != "ok watch 4 holds" {
		t.Fatalf("W blackholefree: %q", got)
	}
	if got := c.roundTrip(t, "stats"); !strings.Contains(got, "watch=5") {
		t.Fatalf("stats: %q", got)
	}
	if got := c.roundTrip(t, "unwatch 3"); got != "ok unwatch 3" {
		t.Fatalf("unwatch: %q", got)
	}
	if got := c.roundTrip(t, "unwatch 3"); !strings.HasPrefix(got, "err") {
		t.Fatalf("double unwatch: %q", got)
	}
	if got := c.roundTrip(t, "stats"); !strings.Contains(got, "watch=4") {
		t.Fatalf("stats after unwatch: %q", got)
	}
	for _, req := range []string{
		"W", "W bogus", "W reach 0", "W reach 0 99", "W waypoint 0 1",
		"W isolated 0,x 1", "W isolated 0 99", "unwatch", "unwatch x",
	} {
		if got := c.roundTrip(t, req); !strings.HasPrefix(got, "err") {
			t.Fatalf("%q -> %q, want err", req, got)
		}
	}
}

// TestWatchStreaming: a watching connection receives transition events
// caused by another connection's mutations, interleaved with its own
// request/response traffic.
func TestWatchStreaming(t *testing.T) {
	_, addr, cleanup := startServer(t)
	defer cleanup()

	setup := dial(t, addr)
	setup.roundTrip(t, "node a")
	setup.roundTrip(t, "node b")
	setup.roundTrip(t, "node c")
	setup.roundTrip(t, "link 0 1")
	setup.roundTrip(t, "link 1 2")
	setup.close()

	watcher := dial(t, addr)
	defer watcher.close()
	if got := watcher.roundTrip(t, "W reach 0 2"); got != "ok watch 0 violated" {
		t.Fatalf("register: %q", got)
	}
	if got := watcher.roundTrip(t, "watch"); got != "ok watching" {
		t.Fatalf("watch: %q", got)
	}
	// The post-subscription snapshot: one status line per invariant.
	if !watcher.r.Scan() {
		t.Fatalf("no status snapshot: %v", watcher.r.Err())
	}
	if got := watcher.r.Text(); !strings.HasPrefix(got, "status 0 violated reach a c") {
		t.Fatalf("status snapshot: %q", got)
	}
	if got := watcher.roundTrip(t, "watch"); got != "err already watching" {
		t.Fatalf("double watch: %q", got)
	}

	mutator := dial(t, addr)
	defer mutator.close()
	mutator.roundTrip(t, "I 1 0 0 0 100 1") // a->b
	mutator.roundTrip(t, "I 2 1 1 0 100 1") // b->c: path complete

	if !watcher.r.Scan() {
		t.Fatalf("no event: %v", watcher.r.Err())
	}
	if got := watcher.r.Text(); !strings.HasPrefix(got, "event 0 cleared reach a c") {
		t.Fatalf("cleared event: %q", got)
	}

	// The watching connection still answers requests.
	if got := watcher.roundTrip(t, "stats"); !strings.HasPrefix(got, "ok stats") {
		t.Fatalf("stats while watching: %q", got)
	}

	mutator.roundTrip(t, "R 2")
	if !watcher.r.Scan() {
		t.Fatalf("no violation event: %v", watcher.r.Err())
	}
	if got := watcher.r.Text(); !strings.HasPrefix(got, "event 0 violation reach a c") {
		t.Fatalf("violation event: %q", got)
	}
}

// TestWatchStreamingBatch: one atomic batch produces the transition events
// of its merged delta.
func TestWatchStreamingBatch(t *testing.T) {
	_, addr, cleanup := startServer(t)
	defer cleanup()

	watcher := dial(t, addr)
	defer watcher.close()
	watcher.roundTrip(t, "node a")
	watcher.roundTrip(t, "node b")
	watcher.roundTrip(t, "node c")
	watcher.roundTrip(t, "link 0 1")
	watcher.roundTrip(t, "link 1 2")
	watcher.roundTrip(t, "W reach 0 2")
	watcher.roundTrip(t, "W loopfree")
	if got := watcher.roundTrip(t, "watch"); got != "ok watching" {
		t.Fatalf("watch: %q", got)
	}
	for i := 0; i < 2; i++ { // snapshot of the two registered invariants
		if !watcher.r.Scan() || !strings.HasPrefix(watcher.r.Text(), "status ") {
			t.Fatalf("status snapshot %d: %q (%v)", i, watcher.r.Text(), watcher.r.Err())
		}
	}

	mutator := dial(t, addr)
	defer mutator.close()
	if got := mutator.sendBatch(t, []string{
		"I 1 0 0 0 100 1",
		"I 2 1 1 0 100 1",
	}); !strings.HasPrefix(got, "ok batch") {
		t.Fatalf("batch: %q", got)
	}
	if !watcher.r.Scan() {
		t.Fatalf("no event: %v", watcher.r.Err())
	}
	if got := watcher.r.Text(); !strings.HasPrefix(got, "event 0 cleared reach a c") {
		t.Fatalf("batch event: %q", got)
	}
}

// TestCloseUnblocksIdleWatcher: Close must not wait for clients to
// disconnect voluntarily — a watcher idling in streaming mode (the
// designed long-lived usage) is closed by the server.
func TestCloseUnblocksIdleWatcher(t *testing.T) {
	s := New()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(l) }()

	w := dial(t, l.Addr().String())
	defer w.close()
	w.roundTrip(t, "node a")
	if got := w.roundTrip(t, "watch"); got != "ok watching" {
		t.Fatalf("watch: %q", got)
	}
	idle := dial(t, l.Addr().String()) // a plain idle connection, too
	defer idle.close()
	idle.roundTrip(t, "stats")

	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	select {
	case err := <-closed:
		if err != nil && !strings.Contains(err.Error(), "use of closed") {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on connected clients")
	}
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
	// Both clients observe the disconnect.
	if w.r.Scan() {
		t.Fatalf("watcher got line after close: %q", w.r.Text())
	}
}

// TestBurstCommand: burst configures coalescing, mutations stop emitting
// per-update events, flush evaluates the pending burst, and stats exposes
// the pending count.
func TestBurstCommand(t *testing.T) {
	_, addr, cleanup := startServer(t)
	defer cleanup()
	c := dial(t, addr)
	defer c.close()
	c.roundTrip(t, "node a")
	c.roundTrip(t, "node b")
	c.roundTrip(t, "link 0 1")
	if got := c.roundTrip(t, "W reach 0 1"); got != "ok watch 0 violated" {
		t.Fatalf("W: %q", got)
	}
	if got := c.roundTrip(t, "burst 100 0"); got != "ok burst deltas=100 age=0" {
		t.Fatalf("burst: %q", got)
	}
	c.roundTrip(t, "I 1 0 0 0 100 1")
	if got := c.roundTrip(t, "stats"); !strings.Contains(got, "pending=1") {
		t.Fatalf("stats mid-burst: %q", got)
	}
	if got := c.roundTrip(t, "flush"); got != "ok flush events=1 pending=0" {
		t.Fatalf("flush: %q", got)
	}
	if got := c.roundTrip(t, "stats"); !strings.Contains(got, "pending=0") {
		t.Fatalf("stats after flush: %q", got)
	}
	// Disabling coalescing flushes implicitly: buffer one more delta,
	// then turn bursting off and confirm nothing stays pending.
	c.roundTrip(t, "R 1")
	if got := c.roundTrip(t, "stats"); !strings.Contains(got, "pending=1") {
		t.Fatalf("stats before disable: %q", got)
	}
	if got := c.roundTrip(t, "burst 0 0"); got != "ok burst deltas=0 age=0" {
		t.Fatalf("burst off: %q", got)
	}
	if got := c.roundTrip(t, "stats"); !strings.Contains(got, "pending=0") {
		t.Fatalf("stats after disable: %q", got)
	}
	for _, req := range []string{"burst", "burst 1", "burst x 0", "burst 0 x", "burst -1 0", "flush now"} {
		if got := c.roundTrip(t, req); !strings.HasPrefix(got, "err") {
			t.Fatalf("%q -> %q, want err", req, got)
		}
	}
}

// TestBurstAgeFlusher: with a MaxAge configured, the background flusher
// evaluates a pending burst without any further protocol activity, and a
// watching connection sees the event stamped with the coalesced range.
func TestBurstAgeFlusher(t *testing.T) {
	_, addr, cleanup := startServer(t)
	defer cleanup()
	c := dial(t, addr)
	defer c.close()
	c.roundTrip(t, "node a")
	c.roundTrip(t, "node b")
	c.roundTrip(t, "link 0 1")
	c.roundTrip(t, "W reach 0 1")
	if got := c.roundTrip(t, "burst 1000 20"); got != "ok burst deltas=1000 age=20" {
		t.Fatalf("burst: %q", got)
	}
	if got := c.roundTrip(t, "watch"); got != "ok watching" {
		t.Fatalf("watch: %q", got)
	}
	if !c.r.Scan() || !strings.HasPrefix(c.r.Text(), "status 0 violated") {
		t.Fatalf("snapshot: %q", c.r.Text())
	}
	c.roundTrip(t, "I 1 0 0 0 100 1") // coalesced, not flushed
	// No further requests: only the background flusher can deliver this.
	if !c.r.Scan() {
		t.Fatalf("no flusher event: %v", c.r.Err())
	}
	if got := c.r.Text(); !strings.HasPrefix(got, "event 0 cleared reach a b upd=1:1") {
		t.Fatalf("flusher event: %q", got)
	}
}

// TestUnwatchOnDisconnect: a connection's registrations are refcounted
// and auto-released when it closes; shared registrations survive until
// every holder lets go.
func TestUnwatchOnDisconnect(t *testing.T) {
	s, addr, cleanup := startServer(t)
	defer cleanup()
	setup := dial(t, addr)
	defer setup.close()
	setup.roundTrip(t, "node a")
	setup.roundTrip(t, "node b")
	setup.roundTrip(t, "link 0 1")

	a := dial(t, addr)
	if got := a.roundTrip(t, "W reach 0 1"); got != "ok watch 0 violated" {
		t.Fatalf("a W: %q", got)
	}
	a.roundTrip(t, "W loopfree")
	b := dial(t, addr)
	// Same spec from another connection: same id, one more reference.
	if got := b.roundTrip(t, "W reach 0 1"); got != "ok watch 0 violated" {
		t.Fatalf("b W: %q", got)
	}
	if got := setup.roundTrip(t, "stats"); !strings.Contains(got, "watch=2") {
		t.Fatalf("stats: %q", got)
	}

	// a disconnects: its loopfree registration dies, but reach 0 1
	// survives on b's reference.
	a.close()
	waitFor(t, func() bool { return s.Monitor().NumRegistered() == 1 })
	if got := setup.roundTrip(t, "stats"); !strings.Contains(got, "watch=1") {
		t.Fatalf("stats after a: %q", got)
	}
	if _, _, ok := s.Monitor().Status(0); !ok {
		t.Fatal("shared registration died with first holder")
	}

	// An explicit unwatch releases b's reference; b's disconnect must not
	// release it twice (the monitor would refuse anyway — ids are not
	// reused — but the count must hit zero exactly once).
	if got := b.roundTrip(t, "unwatch 0"); got != "ok unwatch 0" {
		t.Fatalf("unwatch: %q", got)
	}
	b.close()
	waitFor(t, func() bool { return s.Monitor().NumRegistered() == 0 })
}

// waitFor polls cond for up to 2s; registration teardown runs in the
// connection handler after the socket closes, so tests must wait.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestWatchEquivalence10K is the wire-level ground truth for the sharded
// index and burst mode at scale: 10⁴ standing invariants registered over
// the protocol, randomized concurrent churn applied in bursts, and the
// verdict a live watch connection reconstructs from its status snapshot
// plus the event stream must match a from-scratch oracle for every
// invariant.
func TestWatchEquivalence10K(t *testing.T) {
	const numNodes, chainLen, numInv = 128, 16, 10_000
	s := New()
	g := s.Graph()
	for i := 0; i < numNodes; i++ {
		g.AddNode(fmt.Sprintf("n%d", i))
	}
	// Disjoint chains: i -> i+1 within each chain of chainLen nodes. No
	// cycles, so fixpoints stay tiny at 10⁴ invariants.
	type link struct{ id, src int }
	var links []link
	for i := 0; i < numNodes-1; i++ {
		if i%chainLen != chainLen-1 {
			links = append(links, link{int(g.AddLink(netgraph.NodeID(i), netgraph.NodeID(i+1))), i})
		}
	}
	// Sentinel pair on its own island: its event marks end-of-stream.
	sa := g.AddNode("sentinelA")
	sb := g.AddNode("sentinelB")
	sl := g.AddLink(sa, sb)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(l) }()
	addr := l.Addr().String()
	defer func() {
		s.Close()
		<-done
	}()

	// Register 10⁴ distinct reachability pairs, pipelined (write side in a
	// goroutine so neither end blocks on full TCP buffers).
	reg := dial(t, addr)
	defer reg.close()
	type pair struct{ from, to int }
	pairs := make([]pair, 0, numInv)
	for d := 1; len(pairs) < numInv; d++ {
		for i := 0; i < numNodes && len(pairs) < numInv; i++ {
			pairs = append(pairs, pair{i, (i + d) % numNodes})
		}
	}
	go func() {
		var b strings.Builder
		for _, p := range pairs {
			fmt.Fprintf(&b, "W reach %d %d\n", p.from, p.to)
		}
		fmt.Fprintf(&b, "W reach %d %d\n", sa, sb) // sentinel, id numInv
		io.WriteString(reg.conn, b.String())
	}()
	for i := 0; i <= numInv; i++ {
		if !reg.r.Scan() {
			t.Fatalf("registration %d: %v", i, reg.r.Err())
		}
		if want := fmt.Sprintf("ok watch %d violated", i); reg.r.Text() != want {
			t.Fatalf("registration %d: %q, want %q", i, reg.r.Text(), want)
		}
	}

	// Watcher: snapshot, then a drain goroutine owns the event stream
	// until the sentinel event arrives.
	watcher := dial(t, addr)
	defer watcher.close()
	if got := watcher.roundTrip(t, "watch"); got != "ok watching" {
		t.Fatalf("watch: %q", got)
	}
	verdict := make([]bool, numInv+1) // violated?
	for i := 0; i <= numInv; i++ {
		if !watcher.r.Scan() {
			t.Fatalf("snapshot line %d: %v", i, watcher.r.Err())
		}
		f := strings.Fields(watcher.r.Text())
		if len(f) < 3 || f[0] != "status" {
			t.Fatalf("snapshot line %d: %q", i, watcher.r.Text())
		}
		id, _ := strconv.Atoi(f[1])
		verdict[id] = f[2] == "violated"
	}
	drained := make(chan error, 1)
	go func() {
		for watcher.r.Scan() {
			f := strings.Fields(watcher.r.Text())
			if len(f) < 3 || f[0] != "event" {
				drained <- fmt.Errorf("unexpected line in stream: %q", watcher.r.Text())
				return
			}
			id, _ := strconv.Atoi(f[1])
			verdict[id] = f[2] == "violation"
			if id == numInv {
				drained <- nil // the sentinel fires last, by construction
				return
			}
		}
		drained <- fmt.Errorf("stream ended: %v", watcher.r.Err())
	}()

	ctl := dial(t, addr)
	defer ctl.close()
	if got := ctl.roundTrip(t, "burst 8 0"); got != "ok burst deltas=8 age=0" {
		t.Fatalf("burst: %q", got)
	}

	// Two mutators churn concurrently (disjoint rule-id spaces).
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			c := dial(t, addr)
			defer c.close()
			var live []int
			for step := 0; step < 120; step++ {
				var req string
				if len(live) > 4 && rng.Intn(3) == 0 {
					i := rng.Intn(len(live))
					req = fmt.Sprintf("R %d", live[i])
					live = append(live[:i], live[i+1:]...)
				} else {
					lk := links[rng.Intn(len(links))]
					id := w*100000 + step
					lo := rng.Intn(1 << 10)
					req = fmt.Sprintf("I %d %d %d %d %d %d",
						id, lk.src, lk.id, lo, lo+1+rng.Intn(1<<8), rng.Intn(4))
					live = append(live, id)
				}
				if _, err := fmt.Fprintln(c.conn, req); err != nil {
					t.Error(err)
					return
				}
				if !c.r.Scan() || !strings.HasPrefix(c.r.Text(), "ok") {
					t.Errorf("%q -> %q", req, c.r.Text())
					return
				}
			}
		}()
	}
	wg.Wait()

	if got := ctl.roundTrip(t, "flush"); !strings.HasPrefix(got, "ok flush") {
		t.Fatalf("flush: %q", got)
	}
	if got := ctl.roundTrip(t, "burst 0 0"); !strings.HasPrefix(got, "ok burst") {
		t.Fatalf("burst off: %q", got)
	}
	// Trip the sentinel (bursting is off, so its event is immediate and,
	// the stream being FIFO, everything before it has been delivered).
	if got := ctl.roundTrip(t, fmt.Sprintf("I 999999 %d %d 0 10 1", sa, sl)); !strings.HasPrefix(got, "ok") {
		t.Fatalf("sentinel insert: %q", got)
	}
	if err := <-drained; err != nil {
		t.Fatal(err)
	}

	// Oracle: one from-scratch fixpoint per source; the server is idle
	// now, so reading the engine directly is safe.
	reachOf := map[int][]*bitset.Set{}
	for i, p := range pairs {
		r, ok := reachOf[p.from]
		if !ok {
			r = check.ReachFrom(s.Network(), netgraph.NodeID(p.from), nil)
			reachOf[p.from] = r
		}
		wantViolated := p.to >= len(r) || r[p.to] == nil || r[p.to].Empty()
		if verdict[i] != wantViolated {
			t.Fatalf("invariant %d (reach %d %d): watch stream says violated=%v, oracle %v",
				i, p.from, p.to, verdict[i], wantViolated)
		}
	}
	if verdict[numInv] {
		t.Fatal("sentinel still violated after its clearing event")
	}
	// The stream must have actually carried transitions, and the monitor
	// must have coalesced the churn into bursts.
	st := s.Monitor().Stats()
	if st.Events == 0 || st.Bursts == 0 || st.Coalesced < 200 {
		t.Fatalf("stats %+v: churn did not exercise bursting", st)
	}
}
