package ingest

import (
	"sync"
	"testing"
	"time"

	"deltanet/internal/core"
)

// TestFIFO checks single-producer ordering and the empty/full edges.
func TestFIFO(t *testing.T) {
	r := New(4)
	if r.Cap() != 4 {
		t.Fatalf("cap %d, want 4", r.Cap())
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
	for i := 0; i < 4; i++ {
		if !r.TryPush(Entry{Op: core.RemoveOp(core.RuleID(i))}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.TryPush(Entry{}) {
		t.Fatal("push into full ring succeeded")
	}
	if d := r.Depth(); d != 4 {
		t.Fatalf("depth %d, want 4", d)
	}
	for i := 0; i < 4; i++ {
		e, ok := r.TryPop()
		if !ok || e.Op.Rule.ID != core.RuleID(i) {
			t.Fatalf("pop %d: got %+v ok=%v", i, e, ok)
		}
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("pop from drained ring succeeded")
	}
}

// TestMPSC hammers the ring from many producers against one consumer
// and checks that every entry arrives exactly once (run under -race in
// CI).
func TestMPSC(t *testing.T) {
	const producers = 8
	const perProducer = 5000
	r := New(256)

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				id := core.RuleID(p*perProducer + i)
				if !r.Push(Entry{Op: core.RemoveOp(id), Conn: uint32(p)}) {
					t.Errorf("producer %d: push failed", p)
					return
				}
			}
		}(p)
	}
	go func() {
		wg.Wait()
		r.Close()
	}()

	seen := make([]bool, producers*perProducer)
	lastPerConn := make([]int64, producers)
	for i := range lastPerConn {
		lastPerConn[i] = -1
	}
	total := 0
	for {
		e, ok := r.Pop()
		if !ok {
			break
		}
		id := int64(e.Op.Rule.ID)
		if seen[id] {
			t.Fatalf("entry %d delivered twice", id)
		}
		seen[id] = true
		// Per-producer FIFO: a producer's entries arrive in push order.
		if id <= lastPerConn[e.Conn] && id/perProducer == lastPerConn[e.Conn]/perProducer {
			t.Fatalf("producer %d reordered: %d after %d", e.Conn, id, lastPerConn[e.Conn])
		}
		lastPerConn[e.Conn] = id
		total++
	}
	if total != producers*perProducer {
		t.Fatalf("consumed %d entries, want %d", total, producers*perProducer)
	}
	if r.Pushed() != uint64(total) {
		t.Fatalf("Pushed()=%d, want %d", r.Pushed(), total)
	}
}

// TestBlockingPush checks that a producer blocked on a full ring is
// released by a consumer pop, not dropped.
func TestBlockingPush(t *testing.T) {
	r := New(2)
	for i := 0; i < r.Cap(); i++ {
		r.TryPush(Entry{Op: core.RemoveOp(core.RuleID(i))})
	}
	pushed := make(chan bool)
	go func() { pushed <- r.Push(Entry{Op: core.RemoveOp(99)}) }()
	select {
	case <-pushed:
		t.Fatal("push into full ring returned before a pop")
	case <-time.After(50 * time.Millisecond):
	}
	if _, ok := r.Pop(); !ok {
		t.Fatal("pop failed")
	}
	select {
	case ok := <-pushed:
		if !ok {
			t.Fatal("push reported closed ring")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked push never released")
	}
}

// TestCloseReleasesWaiters checks Close wakes both a blocked consumer
// and blocked producers, and that queued entries drain before Pop
// reports closure.
func TestCloseReleasesWaiters(t *testing.T) {
	r := New(2)
	popped := make(chan bool)
	go func() { _, ok := r.Pop(); popped <- ok }()
	time.Sleep(20 * time.Millisecond) // let the consumer park
	r.TryPush(Entry{Op: core.RemoveOp(7)})
	select {
	case ok := <-popped:
		if !ok {
			t.Fatal("pop returned closed for a live entry")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked consumer never woke for a push")
	}

	r.TryPush(Entry{Op: core.RemoveOp(8)})
	r.Close()
	if e, ok := r.Pop(); !ok || e.Op.Rule.ID != 8 {
		t.Fatalf("queued entry lost at close: %+v ok=%v", e, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop after drain of a closed ring succeeded")
	}
	if r.Push(Entry{}) {
		t.Fatal("push into closed ring succeeded")
	}
}

// BenchmarkRing measures the contended push/pop cost per op — the
// per-op serial overhead the binary path pays instead of line parsing.
func BenchmarkRing(b *testing.B) {
	r := New(4096)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, ok := r.Pop(); !ok {
				return
			}
		}
	}()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Push(Entry{})
		}
	})
	r.Close()
	<-done
}
