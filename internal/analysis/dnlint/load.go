package dnlint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// LoadedPackage is one type-checked target package ready for analysis.
type LoadedPackage struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *listError
}

type listError struct {
	Pos string
	Err string
}

// Load resolves patterns with `go list -e -export -deps -json` (run in
// dir, or the current directory when dir is empty) and type-checks every
// matched target package from source. Imports — including the standard
// library — are satisfied from the compiler's export data, so the types
// seen here are exactly the types the build saw. Test files are not
// loaded (matching `go vet`'s default unit of work); analyzers that care
// about _test.go contents read them off disk via the package Dir.
func Load(dir string, patterns ...string) ([]*LoadedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []*listPackage
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		p := new(listPackage)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*LoadedPackage
	for _, p := range targets {
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("package %s: cgo packages are not supported", p.ImportPath)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		lp, err := typeCheck(fset, imp, p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

func typeCheck(fset *token.FileSet, imp types.Importer, p *listPackage) (*LoadedPackage, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("package %s: %v", p.ImportPath, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var terrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	tpkg, _ := conf.Check(p.ImportPath, fset, files, info)
	if len(terrs) > 0 {
		msgs := make([]string, 0, 4)
		for i, e := range terrs {
			if i == 4 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(terrs)-i))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("package %s: type errors:\n\t%s", p.ImportPath, strings.Join(msgs, "\n\t"))
	}
	return &LoadedPackage{
		Path:  p.ImportPath,
		Dir:   p.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
