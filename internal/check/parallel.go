package check

import (
	"runtime"
	"sync"

	"deltanet/internal/core"
	"deltanet/internal/intervalmap"
)

// parallelDeltaThreshold is the number of Added entries above which the
// goroutine-parallel delta loop check beats the serial one; below it the
// fan-out overhead dominates. Shared by every call site that wants the
// size-based choice (FindLoopsDeltaAuto).
const parallelDeltaThreshold = 64

// FindLoopsDeltaAuto picks the serial or parallel delta loop check by
// delta size: merged batch deltas with many label additions fan out over
// the worker pool, while the common 1–2 atom delta stays serial.
func FindLoopsDeltaAuto(n *core.Network, d *core.Delta, workers int) []Loop {
	if d == nil || len(d.Added) < parallelDeltaThreshold {
		return FindLoopsDelta(n, d)
	}
	return FindLoopsDeltaParallel(n, d, workers)
}

// FindLoopsDeltaParallel is FindLoopsDelta with the per-atom walks fanned
// out over goroutines — the paper's §6 observation that "the main loops
// over atoms in Algorithm 1 and 2 are highly parallelizable" applies to
// the delta check too, since each atom's walk only reads engine state.
// It pays off when a delta touches many atoms (bulk updates, link
// failures); for the common 1–2 atom delta the serial version is faster.
// workers ≤ 0 selects GOMAXPROCS.
func FindLoopsDeltaParallel(n *core.Network, d *core.Delta, workers int) []Loop {
	if d == nil || len(d.Added) == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Deduplicate atoms first; one walk per affected atom.
	seen := map[intervalmap.AtomID]core.LinkAtom{}
	for _, la := range d.Added {
		if _, ok := seen[la.Atom]; !ok {
			seen[la.Atom] = la
		}
	}
	type job struct {
		atom intervalmap.AtomID
		la   core.LinkAtom
	}
	jobs := make([]job, 0, len(seen))
	for atom, la := range seen {
		jobs = append(jobs, job{atom, la})
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var (
		mu    sync.Mutex
		loops []Loop
		wg    sync.WaitGroup
		next  = make(chan job, len(jobs))
	)
	for _, j := range jobs {
		next <- j
	}
	close(next)
	g := n.Graph()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for j := range next {
				l := g.Link(j.la.Link)
				if loop, ok := traceLoop(n, l.Src, j.atom); ok {
					mu.Lock()
					loops = append(loops, loop)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return loops
}
