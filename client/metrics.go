package client

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"deltanet/internal/metrics"
)

// An Exposition is a fetched and strictly validated Prometheus text
// exposition from a dnserve admin endpoint.
type Exposition struct {
	URL      string // the resolved scrape URL
	Body     string // the raw exposition text
	Families int    // # TYPE headers
	Samples  int    // non-comment sample lines
}

// Value returns an unlabelled sample's value, or an error naming the
// missing metric. Labelled families need the raw Body.
func (e *Exposition) Value(name string) (float64, error) {
	for _, line := range strings.Split(e.Body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
				return 0, fmt.Errorf("client: metric %s has bad value %q", name, rest)
			}
			return v, nil
		}
	}
	return 0, fmt.Errorf("client: metric %s not in exposition from %s", name, e.URL)
}

// ScrapeMetrics fetches target's Prometheus exposition and validates it
// strictly — the same validator the CI smoke test uses, so a nil error
// means a scraper will parse the page. A target without a scheme is
// treated as host:port and expanded to http://host:port/metrics.
func ScrapeMetrics(target string) (*Exposition, error) {
	url := target
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if !strings.Contains(strings.TrimPrefix(url, "http://"), "/") {
		url += "/metrics"
	}
	hc := &http.Client{Timeout: 10 * time.Second}
	resp, err := hc.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if err := metrics.ValidateExposition(bytes.NewReader(body)); err != nil {
		return nil, fmt.Errorf("client: invalid exposition from %s: %v", url, err)
	}
	e := &Exposition{URL: url, Body: string(body)}
	for _, line := range strings.Split(e.Body, "\n") {
		switch {
		case strings.HasPrefix(line, "# TYPE "):
			e.Families++
		case line == "" || strings.HasPrefix(line, "#"):
		default:
			e.Samples++
		}
	}
	return e, nil
}
