package check

// Epoch-stamped query scratch. Every checker in this package used to
// allocate its working state per call — a fresh reach vector and
// in-queue bitmap per fixpoint, a fresh visited map per loop walk, a
// full O(NumNodes) verdict reset per atom in the all-atoms scan. Under
// the monitor's steady-state churn those allocations dominate the
// profile, and the O(NumNodes) resets dwarf the O(visited) useful work
// on sparse queries.
//
// Scratch replaces all of it with generation-counted arrays: each array
// entry is paired with a uint32 stamp, an entry is valid only while its
// stamp equals the owning generation counter, and "reset" is a counter
// increment — O(1), with the previous epoch's entries invalidated in
// place. The arrays are sized to the graph once and reused, so a warmed
// scratch makes the fixpoint and the loop walks allocation-free.
//
// Concurrency: a Scratch is single-goroutine state. Concurrent queries
// need one Scratch each — the monitor keeps one per evaluation worker
// (its RunSharded shards), one-shot entry points draw from the package
// pool.

import (
	"sync"

	"deltanet/internal/bitset"
	"deltanet/internal/intervalmap"
	"deltanet/internal/netgraph"
)

// Scratch holds the reusable working state of the package's fixpoints
// (fixpoint.run, ReachSummary, ReachableWithTransforms) and loop walks
// (traceLoop, findLoops). The zero value is NOT ready; use NewScratch
// or the Get/PutScratch pool.
type Scratch struct {
	// Fixpoint state. reach is the per-run view handed to callers:
	// reach[v] is non-nil iff v was reached in the current run, and the
	// sets themselves are pooled per node in sets (allocated on a
	// node's first-ever touch, cleared and reused after). touched is
	// the undo list that re-nils the view in O(visited) at the start of
	// the next run.
	reach   []*bitset.Set
	sets    []*bitset.Set
	touched []netgraph.NodeID

	// fixGen stamps queue membership: inq[v] == fixGen means v is
	// currently enqueued (dequeue writes 0, which no epoch equals).
	fixGen uint32
	inq    []uint32

	// queue is the worklist ring: head indexes the front, push appends.
	// The backing array is retained across runs, so the old
	// `queue = queue[1:]` slice shift — O(n²) worst case and a fresh
	// allocation per run — becomes an index increment.
	queue []netgraph.NodeID
	head  int

	// visited collects reached nodes in discovery order for the
	// dependency-summary builders.
	visited []netgraph.NodeID

	// hop is the per-hop intersection set of the fixpoint inner loop.
	hop *bitset.Set

	// Walk state (traceLoop, findLoops): pos[v] is v's index on the
	// current walk's path while posGen[v] == walkGen.
	walkGen uint32
	posGen  []uint32
	pos     []int32
	path    []netgraph.NodeID

	// Per-atom node verdicts of the all-atoms loop scan, valid while
	// verdGen[v] == verdEpoch — the per-atom "reset" that used to
	// rewrite an O(NumNodes) array now bumps verdEpoch.
	verdEpoch uint32
	verdGen   []uint32
	verd      []uint8

	// Atom-keyed dedup stamps (FindLoopsDelta's seen set).
	atomEpoch uint32
	atomGen   []uint32

	// starts and rs serve findLoops and ReachSummary respectively.
	starts []netgraph.NodeID
	rs     intervalmap.RangeSet
}

// NewScratch returns an empty scratch; its arrays grow to the graph on
// first use and are retained afterwards.
func NewScratch() *Scratch {
	return &Scratch{hop: bitset.New(0)}
}

var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

// GetScratch draws a scratch from the package pool. Callers that run
// queries in a loop (or per worker) should instead hold their own
// Scratch so its arrays stay warm.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns a scratch to the pool. The caller must not retain
// any result that aliases it (reach vectors from ReachSummary do; the
// one-shot entry points clone before releasing).
func PutScratch(sc *Scratch) { scratchPool.Put(sc) }

// growNodes sizes every node-indexed array to at least n entries. New
// entries carry stamp 0, which no live epoch equals.
func (sc *Scratch) growNodes(n int) {
	if len(sc.reach) >= n {
		return
	}
	sc.reach = append(sc.reach, make([]*bitset.Set, n-len(sc.reach))...)
	sc.sets = append(sc.sets, make([]*bitset.Set, n-len(sc.sets))...)
	sc.inq = append(sc.inq, make([]uint32, n-len(sc.inq))...)
	sc.posGen = append(sc.posGen, make([]uint32, n-len(sc.posGen))...)
	sc.pos = append(sc.pos, make([]int32, n-len(sc.pos))...)
	sc.verdGen = append(sc.verdGen, make([]uint32, n-len(sc.verdGen))...)
	sc.verd = append(sc.verd, make([]uint8, n-len(sc.verd))...)
}

// growAtoms sizes the atom-stamp array to at least n entries.
func (sc *Scratch) growAtoms(n int) {
	if len(sc.atomGen) < n {
		sc.atomGen = append(sc.atomGen, make([]uint32, n-len(sc.atomGen))...)
	}
}

// beginFix opens a fixpoint epoch: the reach view from the previous run
// is un-published (O(previous visited)), the queue ring rewinds, and
// queue-membership stamps roll over. Returns the reach view sized to
// numNodes.
func (sc *Scratch) beginFix(numNodes int) []*bitset.Set {
	sc.growNodes(numNodes)
	for _, v := range sc.touched {
		sc.reach[v] = nil
	}
	sc.touched = sc.touched[:0]
	sc.visited = sc.visited[:0]
	sc.queue = sc.queue[:0]
	sc.head = 0
	sc.fixGen++
	if sc.fixGen == 0 { // uint32 wraparound: stamps from 2³² runs ago could alias
		for i := range sc.inq {
			sc.inq[i] = 0
		}
		sc.fixGen = 1
	}
	return sc.reach[:numNodes]
}

// reachSet publishes node w in the reach view, reusing w's pooled set
// (cleared) or allocating it on first-ever touch with capacity for
// maxAtom bits.
func (sc *Scratch) reachSet(w netgraph.NodeID, maxAtom int) *bitset.Set {
	s := sc.sets[w]
	if s == nil {
		s = bitset.New(maxAtom)
		sc.sets[w] = s
	} else {
		s.Clear()
	}
	sc.reach[w] = s
	sc.touched = append(sc.touched, w)
	return s
}

// beginWalk opens a walk epoch (invalidating pos stamps) and resets the
// path.
func (sc *Scratch) beginWalk() {
	sc.walkGen++
	if sc.walkGen == 0 {
		for i := range sc.posGen {
			sc.posGen[i] = 0
		}
		sc.walkGen = 1
	}
	sc.path = sc.path[:0]
}

// beginVerdicts opens a verdict epoch: every node's loop-scan verdict
// reverts to unknown in O(1).
func (sc *Scratch) beginVerdicts() {
	sc.verdEpoch++
	if sc.verdEpoch == 0 {
		for i := range sc.verdGen {
			sc.verdGen[i] = 0
		}
		sc.verdEpoch = 1
	}
}

// verdictAt returns v's verdict in the current epoch (unknown if
// unstamped).
func (sc *Scratch) verdictAt(v netgraph.NodeID) uint8 {
	if sc.verdGen[v] == sc.verdEpoch {
		return sc.verd[v]
	}
	return loopUnknown
}

// setVerdict stamps v's verdict for the current epoch.
func (sc *Scratch) setVerdict(v netgraph.NodeID, verdict uint8) {
	sc.verd[v] = verdict
	sc.verdGen[v] = sc.verdEpoch
}

// beginAtoms opens an atom-dedup epoch over maxAtom ids.
func (sc *Scratch) beginAtoms(maxAtom int) {
	sc.growAtoms(maxAtom)
	sc.atomEpoch++
	if sc.atomEpoch == 0 {
		for i := range sc.atomGen {
			sc.atomGen[i] = 0
		}
		sc.atomEpoch = 1
	}
}

// markAtom stamps an atom id, reporting whether it was already stamped
// this epoch.
func (sc *Scratch) markAtom(a intervalmap.AtomID) bool {
	if sc.atomGen[a] == sc.atomEpoch {
		return true
	}
	sc.atomGen[a] = sc.atomEpoch
	return false
}
