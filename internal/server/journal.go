package server

// This file is the primary side of the replication substrate: appending
// every applied mutation to the update journal, serving a consistent
// checkpoint over the wire, streaming the journal tail to replicas
// ("journal since <offset>"), and replaying a local journal suffix
// after a restart.
//
// Journal records reuse the wire line grammar — "node <name>",
// "link <src> <dst>", "I ...", "R ...", and a whole batch as one
// "B <n>\n<n lines>" record — so replay goes through exactly the parse
// and apply paths a live client exercises. Each record is stamped with
// the monitor's post-apply update sequence number; topology records
// reuse the current number (they consume no delta).
//
// The streaming protocol after "ok journal offset=<o> end=<e>":
//
//	r end=<recEnd> pend=<primaryEnd> seq=<s> t=<unixnano> n=<k>
//	<k payload lines>
//
// recEnd is the record's end offset — the replica's next cursor — and
// pend the primary journal's end at send time, so the replica can
// compute its byte lag from every frame. A replica whose offset
// predates the journal's base (a rotation won) is told
// "err journal truncated base=<b> end=<e>" and re-anchors on a fresh
// checkpoint.

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"deltanet/internal/check"
	"deltanet/internal/core"
	"deltanet/internal/journal"
	"deltanet/internal/netgraph"
)

// journalAppendLocked appends one applied mutation to the journal and
// fans it out to live journal streams. Caller holds the write lock, so
// records land in apply order and the recorded update seq is the one
// the mutation produced. An append failure is counted, not propagated:
// the mutation is already applied and will be acknowledged; what
// degrades is durability/replication, which the jrnlErrs counter and
// lag metrics surface.
func (s *Server) journalAppendLocked(payload string) {
	if s.jrnl == nil {
		return
	}
	seq := s.mon.UpdateSeq()
	end, err := s.jrnl.Append(seq, payload)
	if err != nil {
		s.jrnlErrs.Add(1)
		return
	}
	s.jsubMu.Lock()
	if len(s.jsubs) > 0 {
		rec := journal.Record{Seq: seq, End: end, Payload: []byte(payload)}
		for ch := range s.jsubs {
			select {
			case ch <- rec:
			default:
				// A stream this far behind is cheaper to drop: the replica
				// reconnects and catches up from the file.
				delete(s.jsubs, ch)
				close(ch)
			}
		}
	}
	s.jsubMu.Unlock()
}

// jstreamBuffer is a journal stream's fan-out channel capacity; a
// subscriber that falls this far behind live appends is dropped and
// re-anchors from the file on reconnect.
const jstreamBuffer = 1024

// checkpointResponse serves the checkpoint verb: the state dump in
// SaveState's format, framed for the wire as
// "ok checkpoint n=<k> offset=<o>" followed by exactly k dump lines.
// offset is the journal offset the dump is current through — the
// cursor the client hands to "journal since". Caller holds at least
// the read lock.
func (s *Server) checkpointResponse() string {
	var dump strings.Builder
	off, err := s.saveStateLocked(&dump, s.mon.SnapshotSpecs())
	if err != nil {
		return "err checkpoint: " + err.Error()
	}
	body := strings.TrimSuffix(dump.String(), "\n")
	n := strings.Count(body, "\n") + 1
	return fmt.Sprintf("ok checkpoint n=%d offset=%d\n%s", n, off, body)
}

// streamJournal serves "journal since <offset>": it subscribes to live
// appends, catches up from the file, and then streams frames until the
// connection dies or the server closes. It returns "" when streaming
// ran (the connection is spent) and a response line when the request
// was refused.
func (s *Server) streamJournal(fields []string, cw *connWriter) string {
	if s.jrnl == nil {
		return "err journal disabled"
	}
	if len(fields) != 3 || fields[1] != "since" {
		return "err usage: journal since <offset>"
	}
	from, err := strconv.ParseUint(fields[2], 10, 64)
	if err != nil {
		return "err bad journal offset"
	}
	base, end := s.jrnl.Base(), s.jrnl.End()
	if from < base {
		return fmt.Sprintf("err journal truncated base=%d end=%d", base, end)
	}
	if from > end {
		return fmt.Sprintf("err journal offset %d beyond end %d", from, end)
	}

	// Subscribe before the file catch-up so no append can fall between
	// the two; the cursor check below deduplicates the overlap.
	ch := make(chan journal.Record, jstreamBuffer)
	s.jsubMu.Lock()
	s.jsubs[ch] = struct{}{}
	s.jsubMu.Unlock()
	defer func() {
		s.jsubMu.Lock()
		if _, live := s.jsubs[ch]; live {
			delete(s.jsubs, ch)
			close(ch)
		}
		s.jsubMu.Unlock()
	}()

	if err := cw.writeLine(fmt.Sprintf("ok journal offset=%d end=%d", from, end)); err != nil {
		return ""
	}
	cursor, ok := s.streamJournalFile(cw, from)
	if !ok {
		return ""
	}
	for {
		select {
		case rec, live := <-ch:
			if !live {
				// Dropped by the publisher: end the stream; the replica
				// reconnects and catches up from the file.
				return ""
			}
			if rec.End <= cursor {
				continue // already sent by the file catch-up
			}
			if !s.writeJournalFrame(cw, rec) {
				return ""
			}
			cursor = rec.End
		case <-s.closed:
			return ""
		}
	}
}

// streamJournalFile replays the on-disk suffix after from, re-anchoring
// the reader until it has caught up with the journal's end at scan
// time. It returns the cursor reached and whether the client is still
// writable.
func (s *Server) streamJournalFile(cw *connWriter, from uint64) (cursor uint64, ok bool) {
	cursor = from
	for cursor < s.jrnl.End() {
		r, err := s.jrnl.ReadFrom(cursor)
		if err != nil {
			// A rotation raced past the cursor mid-stream; the truncation
			// error line tells the replica to re-anchor.
			werr := cw.writeLine(fmt.Sprintf("err journal truncated base=%d end=%d", s.jrnl.Base(), s.jrnl.End()))
			_ = werr // the stream ends either way
			return cursor, false
		}
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				r.Close()
				return cursor, false
			}
			if !s.writeJournalFrame(cw, rec) {
				r.Close()
				return cursor, false
			}
			cursor = rec.End
		}
		r.Close()
	}
	return cursor, true
}

// writeJournalFrame writes one record as a frame header plus its
// payload lines, reporting whether the client is still writable.
func (s *Server) writeJournalFrame(cw *connWriter, rec journal.Record) bool {
	lines := strings.Split(string(rec.Payload), "\n")
	var b strings.Builder
	fmt.Fprintf(&b, "r end=%d pend=%d seq=%d t=%d n=%d",
		rec.End, s.jrnl.End(), rec.Seq, rec.Stamp, len(lines))
	for _, l := range lines {
		b.WriteByte('\n')
		b.WriteString(l)
	}
	return cw.writeLine(b.String()) == nil
}

// ReplayJournal applies the records of j after the offset the loaded
// state dump was current through (LoadState's journal record; 0 when
// the dump predates journaling) — the local crash-recovery path:
// checkpoint + journal suffix = the full pre-crash state. Call it
// after LoadState and before Serve, with j the same journal the server
// was constructed with (WithJournal). It returns the number of records
// applied.
func (s *Server) ReplayJournal(j *journal.Journal) (int, error) {
	from := s.loadedJournal
	if from < j.Base() {
		return 0, fmt.Errorf("server: journal rotated past the state file's offset %d (base %d); checkpoint and journal disagree", from, j.Base())
	}
	if from >= j.End() {
		return 0, nil
	}
	applied := 0
	r, err := j.ReadFrom(from)
	if err != nil {
		return 0, err
	}
	defer r.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return applied, nil
		}
		if err != nil {
			return applied, err
		}
		if msg := s.applyJournalLocked(string(rec.Payload), rec.Seq); msg != "" {
			return applied, fmt.Errorf("server: journal replay at offset %d: %s", rec.End, msg)
		}
		applied++
	}
}

// applyJournalLocked replays one journal record payload through the
// same parse/apply paths as live protocol input, stamping the monitor
// with the record's update seq. It returns "" on success or an error
// message. Caller holds the write lock.
func (s *Server) applyJournalLocked(payload string, seq uint64) string {
	lines := strings.Split(payload, "\n")
	fields := strings.Fields(lines[0])
	if len(fields) == 0 {
		return "empty record"
	}
	switch fields[0] {
	case "node":
		if len(fields) != 2 {
			return "bad node record"
		}
		s.graph.AddNode(fields[1])
		s.mon.ResumeUpdates(seq)
		return ""
	case "link":
		src, dst, err := twoInts(fields)
		if err != nil || !s.validNode(src) || !s.validNode(dst) {
			return "bad link record"
		}
		s.graph.AddLink(netgraph.NodeID(src), netgraph.NodeID(dst))
		s.mon.ResumeUpdates(seq)
		return ""
	case "I":
		op, errmsg := s.parseUpdateLine(lines[0])
		if errmsg != "" {
			return errmsg
		}
		if err := s.net.InsertRuleInto(op.Rule, &s.delta); err != nil {
			return err.Error()
		}
		loops := check.FindLoopsDelta(s.net, &s.delta)
		s.mon.ApplyReplay(&s.delta, loops, true, seq)
		return ""
	case "R":
		op, errmsg := s.parseUpdateLine(lines[0])
		if errmsg != "" {
			return errmsg
		}
		if err := s.net.RemoveRuleInto(op.Rule.ID, &s.delta); err != nil {
			return err.Error()
		}
		s.mon.ApplyReplay(&s.delta, nil, false, seq)
		return ""
	case "B":
		ops := make([]core.BatchOp, 0, len(lines)-1)
		for _, l := range lines[1:] {
			op, errmsg := s.parseUpdateLine(l)
			if errmsg != "" {
				return errmsg
			}
			ops = append(ops, op)
		}
		if err := s.net.ApplyBatch(ops, &s.delta, 0); err != nil {
			return err.Error()
		}
		loops := check.FindLoopsDeltaAuto(s.net, &s.delta, 0)
		s.mon.ApplyReplay(&s.delta, loops, true, seq)
		return ""
	default:
		return "unknown record verb " + fields[0]
	}
}
