package server

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"deltanet/internal/monitor"
)

// This file is the server half of per-update pipeline tracing. The
// monitor times its own stages (dirty-marking, eval fan-out, event
// publish; see monitor.ApplyTrace) and hands them to the sink installed
// in New; the server stages (parse, lock wait, engine apply/delta) are
// timed in dispatch/readAndApplyBatch and parked in s.staged for the
// sink to merge. The merged records land in a bounded ring behind the
// `trace on|off|last <n>` protocol commands, feed the per-stage
// histograms when metrics are enabled, and trip the slow-update log
// when a threshold is set.

// Update verbs, numeric so updateRecord stays pointer-free.
const (
	verbFlush uint8 = iota // burst flush (no single originating command)
	verbInsert
	verbRemove
	verbBatch
)

func verbName(v uint8) string {
	switch v {
	case verbInsert:
		return "I"
	case verbRemove:
		return "R"
	case verbBatch:
		return "B"
	default:
		return "flush"
	}
}

// traceRingCap bounds the trace ring: enough to cover a burst window of
// recent updates without letting diagnostics grow the heap.
const traceRingCap = 256

// updateRecord is one update's (or burst flush's) pipeline trace: which
// update-seq range it covered, the delta and fan-out sizes, and where
// the nanoseconds went, stage by stage. Records are retained by value
// in a fixed ring and must stay free of pointers at any depth so the
// ring adds no GC scan work.
//
//deltanet:pointerfree
type updateRecord struct {
	// Seq is the engine update sequence of the last update covered;
	// First the first (equal outside burst mode).
	Seq   uint64
	First uint64
	// Verb is the originating command (verb* constants).
	Verb uint8
	// HasEval reports whether the record includes an evaluation pass:
	// false for updates merely buffered into a pending burst (their
	// evaluation cost appears later on the flush record).
	HasEval bool
	// Coalesced counts deltas merged into the pass (1 outside burst
	// mode). Links/Added/Removed describe the delta; Dirtied/Evaluated/
	// Skipped/RangeSkipped/Events the evaluation fan-out.
	Coalesced    int
	Links        int
	Added        int
	Removed      int
	Dirtied      int
	Evaluated    int
	Skipped      int
	RangeSkipped int
	Events       int
	// Per-stage wall nanoseconds. Parse/Lock/Apply are zero on flush
	// records; Dirty/Eval/Publish are zero when !HasEval.
	ParseNs   int64
	LockNs    int64
	ApplyNs   int64
	DirtyNs   int64
	EvalNs    int64
	PublishNs int64
	// TotalNs is the sum of the stage times above.
	TotalNs int64
}

// format renders the record as one `trace ...` response line.
func (r updateRecord) format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace upd=%d:%d verb=%s coalesced=%d eval=%t links=%d add=%d del=%d dirtied=%d evaluated=%d skipped=%d rskip=%d events=%d",
		r.First, r.Seq, verbName(r.Verb), r.Coalesced, r.HasEval,
		r.Links, r.Added, r.Removed, r.Dirtied, r.Evaluated, r.Skipped,
		r.RangeSkipped, r.Events)
	fmt.Fprintf(&b, " parse_ns=%d lock_ns=%d apply_ns=%d dirty_ns=%d eval_ns=%d publish_ns=%d total_ns=%d",
		r.ParseNs, r.LockNs, r.ApplyNs, r.DirtyNs, r.EvalNs, r.PublishNs, r.TotalNs)
	return b.String()
}

// tracer is the bounded per-update trace ring plus the slow-update
// logging state. Recording is on by default (the ring is cheap); the
// `trace off` command stops retention without disturbing slow-update
// logging.
type tracer struct {
	// mu guards everything below. It ranks between flushMu and
	// connWriter.mu: records are taken while the engine lock is held
	// (the sink runs inside Apply), responses are formatted under the
	// read lock, and nothing below ever writes to a connection.
	//
	//deltanet:lockrank 35
	mu        sync.Mutex
	off       bool // zero value = tracing on
	ring      [traceRingCap]updateRecord
	next      int // ring write position
	n         int // valid records (≤ traceRingCap)
	slowNs    int64
	slowLog   io.Writer
	slowCount uint64
}

// record retains rec (when tracing is on) and emits the slow-update log
// line (when a threshold is configured and exceeded). The log write
// happens outside the lock: the sink path holds the engine lock, and a
// slow log target must not extend that critical section.
func (t *tracer) record(rec updateRecord) {
	t.mu.Lock()
	if !t.off {
		t.ring[t.next] = rec
		t.next = (t.next + 1) % traceRingCap
		if t.n < traceRingCap {
			t.n++
		}
	}
	slow := t.slowNs > 0 && rec.TotalNs >= t.slowNs
	var logw io.Writer
	if slow {
		t.slowCount++
		logw = t.slowLog
	}
	t.mu.Unlock()
	if slow && logw != nil {
		fmt.Fprintf(logw, "deltanet: slow update: %s\n", rec.format())
	}
}

// setOn toggles retention; turning tracing off clears the ring so `trace
// last` cannot resurface stale records as if they were recent.
func (t *tracer) setOn(on bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.off = !on
	if !on {
		t.next, t.n = 0, 0
	}
}

// last returns up to n retained records, oldest first.
func (t *tracer) last(n int) []updateRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n > t.n {
		n = t.n
	}
	if n <= 0 {
		return nil
	}
	out := make([]updateRecord, 0, n)
	for i := t.next - n; i < t.next; i++ {
		out = append(out, t.ring[(i+traceRingCap)%traceRingCap])
	}
	return out
}

// slows returns the slow-update count (for /metrics).
func (t *tracer) slows() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.slowCount
}

// setSlowUpdate configures the slow-update log: updates whose summed
// pipeline stages exceed threshold are counted and logged to w (nil w
// counts without logging; threshold ≤ 0 disables both). Applied by
// WithSlowUpdate at construction.
func (s *Server) setSlowUpdate(threshold time.Duration, w io.Writer) {
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	s.tr.slowNs = threshold.Nanoseconds()
	s.tr.slowLog = w
}

// stageInfo parks the server-side stage timings of the mutation
// currently holding the write lock, for the monitor sink to merge into
// its ApplyTrace. Guarded by s.mu: it is written only under the write
// lock and always cleared before that lock is released, so the
// read-locked flush paths only ever observe it invalid.
type stageInfo struct {
	valid   bool
	verb    uint8
	parseNs int64
	lockNs  int64
	applyNs int64
}

// onApplyTrace is the monitor trace sink (installed in New): it merges
// the monitor's stage times with the staged server-side times of the
// originating mutation, retains the record, and feeds the stage
// histograms. It runs under the monitor's apply lock with s.mu held in
// some mode by the caller (write for mutations, read for flushes).
func (s *Server) onApplyTrace(at monitor.ApplyTrace) {
	rec := updateRecord{
		Seq:          at.LastUpdate,
		First:        at.FirstUpdate,
		Verb:         verbFlush,
		HasEval:      true,
		Coalesced:    at.Coalesced,
		Links:        at.Links,
		Added:        at.Added,
		Removed:      at.Removed,
		Dirtied:      at.Dirtied,
		Evaluated:    at.Evaluated,
		Skipped:      at.Skipped,
		RangeSkipped: at.RangeSkipped,
		Events:       at.Events,
		DirtyNs:      at.DirtyNs,
		EvalNs:       at.EvalNs,
		PublishNs:    at.PublishNs,
	}
	if s.staged.valid {
		rec.Verb = s.staged.verb
		rec.ParseNs = s.staged.parseNs
		rec.LockNs = s.staged.lockNs
		rec.ApplyNs = s.staged.applyNs
		s.staged = stageInfo{}
	}
	rec.TotalNs = rec.ParseNs + rec.LockNs + rec.ApplyNs + rec.DirtyNs + rec.EvalNs + rec.PublishNs
	s.tr.record(rec)
	s.observeStages(rec)
}

// finishUpdateLocked closes out a mutation's tracing after its monitor
// Apply returned: when the staged stage times were not consumed by the
// sink (the delta was buffered into a pending burst, or no invariants
// are registered), the engine-side stages still get a record of their
// own. Caller holds the write lock with s.staged set.
func (s *Server) finishUpdateLocked() {
	if !s.staged.valid {
		return
	}
	st := s.staged
	s.staged = stageInfo{}
	seq := s.mon.UpdateSeq()
	rec := updateRecord{
		Seq:     seq,
		First:   seq,
		Verb:    st.verb,
		ParseNs: st.parseNs,
		LockNs:  st.lockNs,
		ApplyNs: st.applyNs,
		TotalNs: st.parseNs + st.lockNs + st.applyNs,
	}
	s.tr.record(rec)
	s.observeStages(rec)
}

// traceResponse handles the `trace` protocol command. Caller holds the
// read lock (the tracer has its own mutex; the engine is not touched).
func (s *Server) traceResponse(fields []string) string {
	const usage = "err usage: trace on | trace off | trace last <n>"
	if len(fields) < 2 {
		return usage
	}
	switch fields[1] {
	case "on":
		if len(fields) != 2 {
			return usage
		}
		s.tr.setOn(true)
		return fmt.Sprintf("ok trace on cap=%d", traceRingCap)
	case "off":
		if len(fields) != 2 {
			return usage
		}
		s.tr.setOn(false)
		return "ok trace off"
	case "last":
		if len(fields) != 3 {
			return usage
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n < 1 {
			return "err trace last wants a positive count"
		}
		recs := s.tr.last(n)
		var b strings.Builder
		fmt.Fprintf(&b, "ok trace n=%d", len(recs))
		for _, r := range recs {
			b.WriteByte('\n')
			b.WriteString(r.format())
		}
		return b.String()
	default:
		return usage
	}
}
