// Package lockorder enforces the declared lock hierarchy: sync.Mutex /
// sync.RWMutex struct fields annotated //deltanet:lockrank <n> must be
// acquired in strictly increasing rank order, never held across a
// return without a deferred unlock, and never copied by value.
//
// Rationale: the monitor's evaluation pipeline nests up to five locks
// (applyMu → invariant.mu → regMu → stripe/index locks → eventMu), the
// server three more, and an out-of-order acquisition anywhere in that
// lattice is a deadlock that only bites under concurrent load — exactly
// the bug class the race detector cannot see. The annotation turns the
// doc comment ordering (monitor.go's "lock order" paragraph) into a
// machine-checked contract.
//
// The analysis is flow-sensitive within a function and summary-based
// across same-package calls:
//
//   - Each function body is walked with an abstract held-lock set.
//     Branches fork the set and merge (union) at join points; branches
//     that end in return/panic drop out of the merge. Acquiring a lock
//     of rank <= any held rank is a violation, as is reaching a return
//     with a lock held that has no deferred unlock.
//   - `go func(){...}` bodies are checked with an empty held set — a
//     goroutine does not inherit its creator's locks.
//   - Calls to same-package functions are checked against a transitive
//     summary of the ranks the callee may acquire; cross-package calls
//     are invisible (each package declares and checks its own lattice).
//   - Values whose type contains a mutex must not be passed, assigned,
//     ranged or returned by value (copying a held lock corrupts it).
//
// Unannotated mutexes (including local variables) participate in none
// of the ordering checks; ranks are per-package, and equal ranks mean
// "unordered peers" — acquiring one while holding the other is flagged.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"deltanet/internal/analysis/dnlint"
)

// Analyzer enforces //deltanet:lockrank acquisition order.
var Analyzer = &dnlint.Analyzer{
	Name: "lockorder",
	Doc:  "check //deltanet:lockrank lock ordering, returns-while-locked, and mutex-by-value copies",
	Run:  run,
}

type rankInfo struct {
	rank    int
	display string // e.g. "Monitor.applyMu"
}

type analysis struct {
	pass      *dnlint.Pass
	ranks     map[*types.Var]rankInfo
	summaries map[*types.Func]map[int]string // func -> rank it may acquire -> display
}

func run(pass *dnlint.Pass) error {
	a := &analysis{pass: pass, ranks: collectRanks(pass)}

	funcs := make(map[*types.Func]*ast.FuncDecl)
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			decls = append(decls, fd)
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				funcs[fn] = fd
			}
		}
	}
	a.buildSummaries(funcs)
	for _, fd := range decls {
		a.checkSignature(fd)
		w := &walker{a: a}
		st := &lockState{}
		if !w.stmts(fd.Body.List, st) {
			w.checkReturn(fd.Body.Rbrace, st)
		}
	}
	return nil
}

// collectRanks gathers //deltanet:lockrank annotations from struct
// fields, validating that each sits on a named sync.Mutex/sync.RWMutex
// field and carries an integer rank.
func collectRanks(pass *dnlint.Pass) map[*types.Var]rankInfo {
	ranks := make(map[*types.Var]rankInfo)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				stype, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range stype.Fields.List {
					args, marked := dnlint.GroupMarker(field.Doc, "lockrank")
					if !marked {
						args, marked = dnlint.GroupMarker(field.Comment, "lockrank")
					}
					if !marked {
						continue
					}
					rank, err := strconv.Atoi(args)
					if err != nil {
						pass.Reportf(field.Pos(), "//deltanet:lockrank needs an integer rank, got %q", args)
						continue
					}
					if len(field.Names) == 0 {
						pass.Reportf(field.Pos(), "//deltanet:lockrank on an embedded field is not supported; name the mutex")
						continue
					}
					for _, name := range field.Names {
						v, ok := dnlint.FieldObj(pass.Info, name)
						if !ok {
							continue
						}
						if !isMutex(v.Type()) {
							pass.Reportf(name.Pos(), "//deltanet:lockrank on %s, which is not a sync.Mutex or sync.RWMutex", name.Name)
							continue
						}
						ranks[v] = rankInfo{rank: rank, display: ts.Name.Name + "." + name.Name}
					}
				}
			}
		}
	}
	return ranks
}

func isMutex(t types.Type) bool {
	return dnlint.NamedType(t, "sync", "Mutex") || dnlint.NamedType(t, "sync", "RWMutex")
}

// mutexCall decodes x.<rankedField>.Lock/RLock/Unlock/RUnlock calls.
// TryLock/TryRLock are exempt from ordering (they cannot block).
func (a *analysis) mutexCall(call *ast.CallExpr) (*types.Var, string, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, "", false
	}
	v := dnlint.SelectedVar(a.pass.Info, sel.X)
	if v == nil {
		return nil, "", false
	}
	if _, ranked := a.ranks[v]; !ranked {
		return nil, "", false
	}
	return v, sel.Sel.Name, true
}

// callee resolves a call to a same-package named function or method.
func (a *analysis) callee(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = a.pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = a.pass.Info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg() != a.pass.Pkg {
		return nil
	}
	return fn
}

// buildSummaries computes, for every function in the package, the set
// of ranked locks it (transitively, through same-package calls) may
// acquire. Goroutine bodies are excluded: their acquisitions happen on
// a different stack.
func (a *analysis) buildSummaries(funcs map[*types.Func]*ast.FuncDecl) {
	direct := make(map[*types.Func]map[int]string, len(funcs))
	calls := make(map[*types.Func]map[*types.Func]bool, len(funcs))
	for fn, fd := range funcs {
		d := make(map[int]string)
		cs := make(map[*types.Func]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				return false
			case *ast.CallExpr:
				if v, method, ok := a.mutexCall(n); ok {
					if method == "Lock" || method == "RLock" {
						ri := a.ranks[v]
						if _, seen := d[ri.rank]; !seen {
							d[ri.rank] = ri.display
						}
					}
				} else if callee := a.callee(n); callee != nil {
					cs[callee] = true
				}
			}
			return true
		})
		direct[fn] = d
		calls[fn] = cs
	}
	a.summaries = direct
	for changed := true; changed; {
		changed = false
		for fn := range funcs {
			sum := a.summaries[fn]
			for callee := range calls[fn] {
				for r, disp := range a.summaries[callee] {
					if _, seen := sum[r]; !seen {
						sum[r] = disp
						changed = true
					}
				}
			}
		}
	}
}

// --- flow-sensitive per-function walk ---

type heldLock struct {
	v        *types.Var
	rank     int
	display  string
	deferred bool // a deferred unlock is pending
	frame    int  // which function literal nesting level acquired it
	pos      token.Pos
}

type lockState struct {
	held []heldLock
}

func (s *lockState) clone() *lockState {
	return &lockState{held: append([]heldLock(nil), s.held...)}
}

func mergeStates(a, b *lockState) *lockState {
	out := a.clone()
	for _, hb := range b.held {
		found := false
		for i, ha := range out.held {
			if ha.v == hb.v && ha.frame == hb.frame {
				out.held[i].deferred = ha.deferred || hb.deferred
				found = true
				break
			}
		}
		if !found {
			out.held = append(out.held, hb)
		}
	}
	return out
}

type walker struct {
	a     *analysis
	frame int
}

func (w *walker) stmts(list []ast.Stmt, st *lockState) bool {
	for _, s := range list {
		if w.stmt(s, st) {
			return true
		}
	}
	return false
}

// stmt walks one statement, mutating st; it reports true when the
// statement terminates the control path (return, panic, branch).
func (w *walker) stmt(s ast.Stmt, st *lockState) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		return w.stmts(s.List, st)
	case *ast.ExprStmt:
		w.expr(s.X, st)
		if call, ok := unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.SendStmt:
		w.expr(s.Chan, st)
		w.expr(s.Value, st)
	case *ast.IncDecStmt:
		w.expr(s.X, st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, st)
			w.a.checkCopy(e, "assignment copies")
		}
		for _, e := range s.Lhs {
			w.expr(e, st)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, st)
						w.a.checkCopy(e, "variable declaration copies")
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, st)
			w.a.checkCopy(e, "return copies")
		}
		w.checkReturn(s.Pos(), st)
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave the linear path; treating them as
		// terminating loses their lock effects, which can only under-
		// report (loop merges already union the body with the entry).
		return true
	case *ast.IfStmt:
		w.stmt(s.Init, st)
		w.expr(s.Cond, st)
		thenSt := st.clone()
		thenTerm := w.stmt(s.Body, thenSt)
		if s.Else != nil {
			elseSt := st.clone()
			elseTerm := w.stmt(s.Else, elseSt)
			switch {
			case thenTerm && elseTerm:
				return true
			case thenTerm:
				*st = *elseSt
			case elseTerm:
				*st = *thenSt
			default:
				*st = *mergeStates(thenSt, elseSt)
			}
			return false
		}
		if !thenTerm {
			*st = *mergeStates(st, thenSt)
		}
	case *ast.ForStmt:
		w.stmt(s.Init, st)
		if s.Cond != nil {
			w.expr(s.Cond, st)
		}
		bodySt := st.clone()
		if !w.stmt(s.Body, bodySt) {
			w.stmt(s.Post, bodySt)
		}
		*st = *mergeStates(st, bodySt)
	case *ast.RangeStmt:
		w.expr(s.X, st)
		if s.Value != nil {
			w.a.checkCopyType(s.Value, "range copies")
		}
		bodySt := st.clone()
		w.stmt(s.Body, bodySt)
		*st = *mergeStates(st, bodySt)
	case *ast.SwitchStmt:
		w.stmt(s.Init, st)
		if s.Tag != nil {
			w.expr(s.Tag, st)
		}
		return w.clauses(s.Body, st, false)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, st)
		w.stmt(s.Assign, st)
		return w.clauses(s.Body, st, false)
	case *ast.SelectStmt:
		return w.clauses(s.Body, st, true)
	case *ast.DeferStmt:
		w.deferStmt(s, st)
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			for _, arg := range s.Call.Args {
				w.expr(arg, st)
			}
			fresh := &lockState{}
			w.frame++
			if !w.stmts(lit.Body.List, fresh) {
				w.checkReturn(lit.Body.Rbrace, fresh)
			}
			w.frame--
		} else {
			w.expr(s.Call.Fun, st)
			for _, arg := range s.Call.Args {
				w.expr(arg, st)
			}
		}
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.EmptyStmt:
	default:
		// Unknown statement kind: scan its expressions conservatively.
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.expr(e, st)
				return false
			}
			return true
		})
	}
	return false
}

// clauses handles switch/type-switch/select bodies: each clause runs
// from the entry state; non-terminating clause exits merge, plus the
// entry state itself when a switch has no default (no clause may run).
func (w *walker) clauses(body *ast.BlockStmt, st *lockState, isSelect bool) bool {
	var exits []*lockState
	hasDefault := false
	clauseCount := 0
	for _, cs := range body.List {
		clauseCount++
		clSt := st.clone()
		var bodyList []ast.Stmt
		switch c := cs.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				w.expr(e, st)
			}
			bodyList = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				w.stmt(c.Comm, clSt)
			}
			bodyList = c.Body
		default:
			continue
		}
		if !w.stmts(bodyList, clSt) {
			exits = append(exits, clSt)
		}
	}
	// A select with no default blocks until exactly one clause runs; a
	// switch may run no clause unless it has a default.
	mayFallThrough := !isSelect && !hasDefault
	if len(exits) == 0 {
		if clauseCount > 0 && !mayFallThrough {
			return true // every reachable clause terminated
		}
		return false // entry state flows through unchanged
	}
	merged := exits[0]
	for _, e := range exits[1:] {
		merged = mergeStates(merged, e)
	}
	if mayFallThrough {
		merged = mergeStates(merged, st)
	}
	*st = *merged
	return false
}

// deferStmt handles defer: a deferred unlock marks the lock as covered
// at returns (but still held for ordering); deferred closures are
// scanned for the unlocks they will perform; other deferred calls are
// order-checked against the current held set (they run at return time,
// when these locks may still be held).
func (w *walker) deferStmt(s *ast.DeferStmt, st *lockState) {
	for _, arg := range s.Call.Args {
		w.expr(arg, st)
	}
	if v, method, ok := w.a.mutexCall(s.Call); ok {
		if method == "Unlock" || method == "RUnlock" {
			st.markDeferred(v)
		}
		return
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if v, method, ok := w.a.mutexCall(call); ok && (method == "Unlock" || method == "RUnlock") {
					st.markDeferred(v)
				}
			}
			return true
		})
		return
	}
	w.checkCallSummary(s.Call, st)
}

func (s *lockState) markDeferred(v *types.Var) {
	for i := len(s.held) - 1; i >= 0; i-- {
		if s.held[i].v == v {
			s.held[i].deferred = true
			return
		}
	}
}

// expr walks an expression: lock/unlock calls mutate the state, calls
// are checked against callee summaries, and function literals are
// walked in a nested frame sharing the current state (a closure invoked
// here runs on this stack; goroutine bodies are handled in stmt).
func (w *walker) expr(e ast.Expr, st *lockState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.frame++
			if !w.stmts(n.Body.List, st) {
				w.checkReturn(n.Body.Rbrace, st)
			}
			w.frame--
			return false
		case *ast.CallExpr:
			w.call(n, st)
			// Descend: nested calls in the arguments get their own events.
			return true
		}
		return true
	})
}

func (w *walker) call(call *ast.CallExpr, st *lockState) {
	if v, method, ok := w.a.mutexCall(call); ok {
		ri := w.a.ranks[v]
		switch method {
		case "Lock", "RLock":
			for _, h := range st.held {
				if ri.rank <= h.rank {
					w.a.pass.Reportf(call.Pos(),
						"acquires %s (lockrank %d) while %s (lockrank %d) is held; locks must be acquired in increasing rank order",
						ri.display, ri.rank, h.display, h.rank)
					break
				}
			}
			st.held = append(st.held, heldLock{v: v, rank: ri.rank, display: ri.display, frame: w.frame, pos: call.Pos()})
		case "Unlock", "RUnlock":
			for i := len(st.held) - 1; i >= 0; i-- {
				if st.held[i].v == v {
					st.held = append(st.held[:i], st.held[i+1:]...)
					break
				}
			}
		}
		return
	}
	w.checkCallSummary(call, st)
}

func (w *walker) checkCallSummary(call *ast.CallExpr, st *lockState) {
	fn := w.a.callee(call)
	if fn == nil {
		return
	}
	sum := w.a.summaries[fn]
	if len(sum) == 0 {
		return
	}
	for _, h := range st.held {
		for r, disp := range sum {
			if r <= h.rank {
				w.a.pass.Reportf(call.Pos(),
					"call to %s acquires %s (lockrank %d) while %s (lockrank %d) is held; locks must be acquired in increasing rank order",
					fn.Name(), disp, r, h.display, h.rank)
				return
			}
		}
	}
}

// checkReturn flags locks acquired in the current frame that reach a
// return (or the end of the body) without a deferred unlock.
func (w *walker) checkReturn(pos token.Pos, st *lockState) {
	for _, h := range st.held {
		if h.frame == w.frame && !h.deferred {
			w.a.pass.Reportf(pos, "returns with %s (lockrank %d) held without a deferred unlock", h.display, h.rank)
		}
	}
}

// --- mutex-by-value copy checks ---

// checkSignature flags by-value receivers, parameters and results whose
// type contains a mutex.
func (a *analysis) checkSignature(fd *ast.FuncDecl) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := a.pass.Info.Types[field.Type]
			if !ok {
				continue
			}
			if path := mutexPath(tv.Type, make(map[types.Type]bool)); path != "" {
				a.pass.Reportf(field.Pos(), "%s of %s passes %s by value", what, fd.Name.Name, path)
			}
		}
	}
	check(fd.Recv, "receiver")
	check(fd.Type.Params, "parameter")
	check(fd.Type.Results, "result")
}

// checkCopy flags expressions that copy an existing mutex-bearing value
// (composite literals and calls produce fresh values and are exempt).
func (a *analysis) checkCopy(e ast.Expr, what string) {
	switch unparen(e).(type) {
	case *ast.CompositeLit, *ast.CallExpr, *ast.FuncLit, *ast.BasicLit, *ast.UnaryExpr, *ast.BinaryExpr:
		return
	}
	a.checkCopyType(e, what)
}

func (a *analysis) checkCopyType(e ast.Expr, what string) {
	tv, ok := a.pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return
	}
	if path := mutexPath(tv.Type, make(map[types.Type]bool)); path != "" {
		a.pass.Reportf(e.Pos(), "%s %s by value", what, path)
	}
}

// mutexPath reports how t embeds a mutex ("a sync.Mutex", "M (contains
// sync.RWMutex)"), or "" when t is safely copyable.
func mutexPath(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if isMutex(t) {
		return "a " + types.TypeString(t, func(p *types.Package) string { return p.Name() })
	}
	switch t := types.Unalias(t).(type) {
	case *types.Named:
		if inner := mutexPath(t.Underlying(), seen); inner != "" {
			return t.Obj().Name() + " (contains " + inner + ")"
		}
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if inner := mutexPath(t.Field(i).Type(), seen); inner != "" {
				return inner
			}
		}
	case *types.Array:
		return mutexPath(t.Elem(), seen)
	}
	return ""
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
