// Package veriflow re-implements Veriflow, the state-of-the-art data plane
// checker Delta-net is evaluated against, following the paper's §4.3.1
// description of "Veriflow-RI": a faithful re-implementation of Veriflow's
// core idea for single-field (destination IP prefix) matching, used for an
// honest performance and behaviour comparison.
//
// Veriflow-RI stores all rules of the network in a one-dimensional binary
// trie keyed by prefix bits (every node has at most two children, since a
// single field has no ternary wildcards mid-prefix here). On each rule
// update it:
//
//  1. finds all rules overlapping the updated rule (trie path ∪ subtree);
//  2. slices the updated rule's range into packet equivalence classes
//     (ECs) at the bounds of the overlapping rules;
//  3. builds a forwarding graph per affected EC by finding, at every
//     device, the highest-priority rule matching the EC;
//  4. traverses each forwarding graph to check invariants (loops).
//
// Space is linear in rules; per-update time is quadratic in the worst case
// — the asymptotic gap to Delta-net that Tables 3 and 4 measure.
package veriflow

import (
	"fmt"
	"sort"

	"deltanet/internal/core"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
)

// Rule is an IP-prefix forwarding rule in the Veriflow-RI engine. Link ==
// netgraph.NoLink denotes a drop rule.
type Rule struct {
	ID       core.RuleID
	Source   netgraph.NodeID
	Link     netgraph.LinkID
	Prefix   ipnet.Prefix
	Priority core.Priority
}

func (r *Rule) interval() ipnet.Interval { return r.Prefix.Interval() }

// trieNode is one node of the binary prefix trie. Rules whose prefix ends
// at this node are stored here, across all devices (Veriflow keeps a
// single network-wide trie).
type trieNode struct {
	children [2]*trieNode
	rules    []*Rule
}

// Engine is the Veriflow-RI checker.
type Engine struct {
	graph *netgraph.Graph
	root  *trieNode
	rules map[core.RuleID]*Rule

	// MaxAffectedECs tracks the largest EC fan-out of any single update,
	// the Appendix C statistic.
	MaxAffectedECs int

	ecBuf []uint64 // scratch for EC bound collection
}

// NewEngine returns an empty Veriflow-RI engine over the topology.
func NewEngine(g *netgraph.Graph) *Engine {
	return &Engine{graph: g, root: &trieNode{}, rules: map[core.RuleID]*Rule{}}
}

// Graph returns the topology.
func (e *Engine) Graph() *netgraph.Graph { return e.graph }

// NumRules returns the number of live rules.
func (e *Engine) NumRules() int { return len(e.rules) }

func bitAt(addr uint64, i, width int) int {
	return int(addr>>(uint(width-1-i))) & 1
}

func (e *Engine) nodeFor(p ipnet.Prefix, create bool) *trieNode {
	n := e.root
	for i := 0; i < p.Len; i++ {
		b := bitAt(p.Addr, i, p.Bits)
		if n.children[b] == nil {
			if !create {
				return nil
			}
			n.children[b] = &trieNode{}
		}
		n = n.children[b]
	}
	return n
}

// UpdateResult summarizes the verification work done for one rule update.
type UpdateResult struct {
	AffectedECs int    // equivalence classes recomputed
	GraphsBuilt int    // forwarding graphs constructed (== AffectedECs)
	Loops       []Loop // forwarding loops found among them
}

// Loop is a forwarding loop found in one EC's forwarding graph.
type Loop struct {
	EC    ipnet.Interval
	Nodes []netgraph.NodeID
}

// InsertRule adds the rule, computes the affected equivalence classes,
// builds one forwarding graph per class and checks each for loops — the
// full Veriflow per-update pipeline.
func (e *Engine) InsertRule(r Rule) (UpdateResult, error) {
	if _, dup := e.rules[r.ID]; dup {
		return UpdateResult{}, fmt.Errorf("veriflow: duplicate rule id %d", r.ID)
	}
	rp := &r
	n := e.nodeFor(r.Prefix, true)
	n.rules = append(n.rules, rp)
	e.rules[r.ID] = rp
	return e.verifyAround(rp), nil
}

// LoadRule adds the rule WITHOUT the per-update verification pipeline —
// for bulk-building a data plane before answering queries (the Table 4/5
// setup), where re-verifying every insertion would add a quadratic cost
// the experiment does not measure.
func (e *Engine) LoadRule(r Rule) error {
	if _, dup := e.rules[r.ID]; dup {
		return fmt.Errorf("veriflow: duplicate rule id %d", r.ID)
	}
	rp := &r
	n := e.nodeFor(r.Prefix, true)
	n.rules = append(n.rules, rp)
	e.rules[r.ID] = rp
	return nil
}

// RemoveRule deletes the rule and re-verifies the equivalence classes it
// covered (after removal, lower-priority rules take over).
func (e *Engine) RemoveRule(id core.RuleID) (UpdateResult, error) {
	rp, ok := e.rules[id]
	if !ok {
		return UpdateResult{}, fmt.Errorf("veriflow: no rule with id %d", id)
	}
	n := e.nodeFor(rp.Prefix, false)
	for i, x := range n.rules {
		if x == rp {
			n.rules[i] = n.rules[len(n.rules)-1]
			n.rules = n.rules[:len(n.rules)-1]
			break
		}
	}
	delete(e.rules, id)
	return e.verifyAround(rp), nil
}

// verifyAround recomputes the ECs within r's range and checks each one's
// forwarding graph.
func (e *Engine) verifyAround(r *Rule) UpdateResult {
	ecs := e.AffectedECs(r.Prefix)
	if len(ecs) > e.MaxAffectedECs {
		e.MaxAffectedECs = len(ecs)
	}
	res := UpdateResult{AffectedECs: len(ecs), GraphsBuilt: len(ecs)}
	for _, ec := range ecs {
		fg := e.ForwardingGraph(ec)
		if loop, ok := e.FindLoop(fg); ok {
			res.Loops = append(res.Loops, Loop{EC: ec, Nodes: loop})
		}
	}
	return res
}

// AffectedECs returns the packet equivalence classes within the given
// prefix's range, induced by all rules in the network overlapping it: the
// range is sliced at every bound of every overlapping rule.
func (e *Engine) AffectedECs(p ipnet.Prefix) []ipnet.Interval {
	iv := p.Interval()
	bounds := e.ecBuf[:0]
	bounds = append(bounds, iv.Lo, iv.Hi)
	e.forEachOverlapping(p, func(o *Rule) {
		oiv := o.interval()
		if oiv.Lo > iv.Lo && oiv.Lo < iv.Hi {
			bounds = append(bounds, oiv.Lo)
		}
		if oiv.Hi > iv.Lo && oiv.Hi < iv.Hi {
			bounds = append(bounds, oiv.Hi)
		}
	})
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	e.ecBuf = bounds
	var ecs []ipnet.Interval
	for i := 1; i < len(bounds); i++ {
		if bounds[i] != bounds[i-1] {
			ecs = append(ecs, ipnet.Interval{Lo: bounds[i-1], Hi: bounds[i]})
		}
	}
	return ecs
}

// forEachOverlapping visits every rule whose prefix overlaps p: rules at
// trie nodes on the path to p (shorter prefixes containing p) and all
// rules in the subtree under p (longer prefixes inside p).
func (e *Engine) forEachOverlapping(p ipnet.Prefix, fn func(*Rule)) {
	n := e.root
	for i := 0; i < p.Len; i++ {
		for _, r := range n.rules {
			fn(r)
		}
		b := bitAt(p.Addr, i, p.Bits)
		if n.children[b] == nil {
			return
		}
		n = n.children[b]
	}
	var walk func(t *trieNode)
	walk = func(t *trieNode) {
		if t == nil {
			return
		}
		for _, r := range t.rules {
			fn(r)
		}
		walk(t.children[0])
		walk(t.children[1])
	}
	walk(n)
}

// ForwardingGraph builds the forwarding graph for one equivalence class:
// for every device that has a matching rule, the out-edge chosen by its
// highest-priority match. The EC is represented by its lowest address (all
// addresses in an EC behave identically by construction).
func (e *Engine) ForwardingGraph(ec ipnet.Interval) map[netgraph.NodeID]netgraph.LinkID {
	addr := ec.Lo
	fg := map[netgraph.NodeID]netgraph.LinkID{}
	best := map[netgraph.NodeID]*Rule{}
	n := e.root
	width := 32
	for depth := 0; ; depth++ {
		for _, r := range n.rules {
			// All rules at this node match addr by construction of
			// the descent.
			if b, ok := best[r.Source]; !ok || less(b, r) {
				best[r.Source] = r
			}
		}
		if depth >= width {
			break
		}
		b := bitAt(addr, depth, width)
		if n.children[b] == nil {
			break
		}
		n = n.children[b]
	}
	for src, r := range best {
		link := r.Link
		if link == netgraph.NoLink {
			continue // drop: no edge in the forwarding graph
		}
		fg[src] = link
	}
	return fg
}

// less orders rules by (priority, id), the same deterministic tie-break as
// the Delta-net engine.
func less(a, b *Rule) bool {
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	return a.ID < b.ID
}

// FindLoop walks the functional forwarding graph (out-degree ≤ 1 per
// node) from every node looking for a cycle: the per-EC traversal of
// Veriflow's verification step.
func (e *Engine) FindLoop(fg map[netgraph.NodeID]netgraph.LinkID) ([]netgraph.NodeID, bool) {
	done := map[netgraph.NodeID]bool{}
	for start := range fg {
		if done[start] {
			continue
		}
		pos := map[netgraph.NodeID]int{}
		var path []netgraph.NodeID
		v := start
		for {
			if done[v] {
				break
			}
			if p, ok := pos[v]; ok {
				return append(append([]netgraph.NodeID(nil), path[p:]...), v), true
			}
			pos[v] = len(path)
			path = append(path, v)
			link, hasNext := fg[v]
			if !hasNext {
				break
			}
			v = e.graph.Link(link).Dst
		}
		for _, u := range path {
			done[u] = true
		}
	}
	return nil, false
}
