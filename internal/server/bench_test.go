package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"deltanet/internal/journal"
	"deltanet/internal/monitor"
)

// benchIngest drives insert/remove churn through dispatch — the full
// primary ingest path (parse, engine apply, monitor, and, when opts
// include a journal, the append) without socket noise.
func benchIngest(b *testing.B, opts ...Option) {
	s := New(opts...)
	owned := map[monitor.ID]int{}
	for _, req := range []string{"node a", "node b", "node c", "link 0 1", "link 1 2"} {
		if got := s.dispatch(req, owned); !strings.HasPrefix(got, "ok") {
			b.Fatalf("%s: %q", req, got)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := i%1000 + 1
		ins := fmt.Sprintf("I %d 0 0 %d %d 1", id, (i%997)*10, (i%997)*10+5)
		if got := s.dispatch(ins, owned); !strings.HasPrefix(got, "ok") {
			b.Fatalf("%s: %q", ins, got)
		}
		rm := fmt.Sprintf("R %d", id)
		if got := s.dispatch(rm, owned); !strings.HasPrefix(got, "ok") {
			b.Fatalf("%s: %q", rm, got)
		}
	}
}

// BenchmarkIngest is the journaling-cost pair: compare Journal=off to
// Journal=none (OS-buffered appends) with benchstat to see what the
// replication substrate costs the primary's hot path; Journal=always
// prices per-append fsync durability.
func BenchmarkIngest(b *testing.B) {
	b.Run("Journal=off", func(b *testing.B) {
		benchIngest(b)
	})
	b.Run("Journal=none", func(b *testing.B) {
		j, err := journal.Open(b.TempDir()+"/bench.j", journal.SyncNone)
		if err != nil {
			b.Fatal(err)
		}
		defer j.Close()
		benchIngest(b, WithJournal(j))
	})
	b.Run("Journal=always", func(b *testing.B) {
		j, err := journal.Open(b.TempDir()+"/bench.j", journal.SyncAlways)
		if err != nil {
			b.Fatal(err)
		}
		defer j.Close()
		benchIngest(b, WithJournal(j))
	})
}

// benchServe boots a serving instance for a read benchmark.
func benchServe(b *testing.B, opts ...Option) (*Server, string) {
	b.Helper()
	s := New(opts...)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go s.Serve(l)
	b.Cleanup(func() { s.Close() })
	return s, l.Addr().String()
}

// benchReads hammers reach queries from GOMAXPROCS workers, each on
// its own connection, round-robined across the given servers.
func benchReads(b *testing.B, addrs []string) {
	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		addr := addrs[next.Add(1)%uint64(len(addrs))]
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			b.Error(err)
			return
		}
		defer conn.Close()
		sc := bufio.NewScanner(conn)
		for pb.Next() {
			if _, err := fmt.Fprintln(conn, "reach a b"); err != nil {
				b.Error(err)
				return
			}
			if !sc.Scan() || !strings.HasPrefix(sc.Text(), "ok reach") {
				b.Errorf("bad reach response %q (%v)", sc.Text(), sc.Err())
				return
			}
		}
	})
}

// BenchmarkReplicaReadScaling is the read scale-out pair: the same
// concurrent reach load against the primary alone versus round-robined
// across the primary and a caught-up replica. Both servers share this
// process's runtime, so in-process the claim this pair supports is
// per-request cost parity: a replica answers reads exactly as fast as
// the primary (same ns/op with the load split), so each replica on its
// own machine adds one primary's worth of read capacity — the linear
// scale-out is in deployment, the parity is what's measurable here.
func BenchmarkReplicaReadScaling(b *testing.B) {
	j, err := journal.Open(b.TempDir()+"/p.j", journal.SyncNone)
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	p, paddr := benchServe(b, WithJournal(j))
	owned := map[monitor.ID]int{}
	reqs := []string{"node a", "node b", "node c", "link 0 1", "link 1 2"}
	for i := 0; i < 200; i++ {
		reqs = append(reqs, fmt.Sprintf("I %d 0 0 %d %d 1", i+1, i*10, i*10+5))
	}
	for _, req := range reqs {
		if got := p.dispatch(req, owned); !strings.HasPrefix(got, "ok") {
			b.Fatalf("%s: %q", req, got)
		}
	}

	r, raddr := benchServe(b, WithReplicaOf(paddr))
	deadline := time.Now().Add(10 * time.Second)
	for r.mon.UpdateSeq() != p.mon.UpdateSeq() || r.replicaLagBytes() != 0 {
		if time.Now().After(deadline) {
			b.Fatal("replica never caught up")
		}
		time.Sleep(5 * time.Millisecond)
	}

	b.Run("servers=1", func(b *testing.B) { benchReads(b, []string{paddr}) })
	b.Run("servers=2", func(b *testing.B) { benchReads(b, []string{paddr, raddr}) })
}
