package check

// Stateless packet modification — the paper's §6: "(stateless) packet
// modification of IP prefixes can be easily supported without substantial
// changes to the data structures by augmenting the edge-labelled graph
// with the necessary information on how atoms are transformed along hops."
//
// A Rewrite on a link shifts the designated header field from one aligned
// range onto another of equal size (the NAT-style dst-prefix translation
// middleboxes perform). Reachability with rewrites propagates atom sets
// through each hop's transform: an atom entering a rewriting link
// continues as whatever atoms its translated interval overlaps.

import (
	"fmt"

	"deltanet/internal/bitset"
	"deltanet/internal/core"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
)

// Rewrite translates addresses in From to the corresponding offset in To.
// From and To must be equal-sized intervals. Addresses outside From pass
// through unchanged.
type Rewrite struct {
	From, To ipnet.Interval
}

// Valid reports whether the rewrite is well-formed.
func (rw Rewrite) Valid() bool {
	return !rw.From.Empty() && rw.From.Size() == rw.To.Size()
}

// Apply maps one address through the rewrite.
func (rw Rewrite) Apply(addr uint64) uint64 {
	if rw.From.Contains(addr) {
		return rw.To.Lo + (addr - rw.From.Lo)
	}
	return addr
}

// ApplyInterval maps an interval through the rewrite, returning the pieces
// of its image (the part inside From is shifted; parts outside pass
// through). The result is a set of at most three disjoint intervals.
func (rw Rewrite) ApplyInterval(iv ipnet.Interval) []ipnet.Interval {
	var out []ipnet.Interval
	add := func(p ipnet.Interval) {
		if !p.Empty() {
			out = append(out, p)
		}
	}
	// Below From.
	add(ipnet.Interval{Lo: iv.Lo, Hi: min64(iv.Hi, rw.From.Lo)})
	// Inside From: shifted.
	in := iv.Intersect(rw.From)
	if !in.Empty() {
		off := in.Lo - rw.From.Lo
		add(ipnet.Interval{Lo: rw.To.Lo + off, Hi: rw.To.Lo + off + in.Size()})
	}
	// Above From.
	add(ipnet.Interval{Lo: max64(iv.Lo, rw.From.Hi), Hi: iv.Hi})
	return out
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Transforms associates rewrites with links of a network. Links without an
// entry forward packets unmodified.
type Transforms struct {
	byLink map[netgraph.LinkID]Rewrite
}

// NewTransforms returns an empty transform table.
func NewTransforms() *Transforms {
	return &Transforms{byLink: map[netgraph.LinkID]Rewrite{}}
}

// Set attaches a rewrite to a link.
func (t *Transforms) Set(l netgraph.LinkID, rw Rewrite) error {
	if !rw.Valid() {
		return fmt.Errorf("check: invalid rewrite %v -> %v", rw.From, rw.To)
	}
	t.byLink[l] = rw
	return nil
}

// Get returns the link's rewrite, if any.
func (t *Transforms) Get(l netgraph.LinkID) (Rewrite, bool) {
	rw, ok := t.byLink[l]
	return rw, ok
}

// transformAtomSet maps an atom set through a link's rewrite: each atom's
// interval is translated and the result re-expressed in atoms. Atoms whose
// intervals the rewrite leaves untouched stay as-is.
func transformAtomSet(n *core.Network, atoms *bitset.Set, rw Rewrite) *bitset.Set {
	out := bitset.New(n.MaxAtomID())
	atoms.ForEach(func(a int) bool {
		iv, ok := n.AtomInterval(intervalmapAtomIDOf(a))
		if !ok {
			return true
		}
		if !iv.Overlaps(rw.From) {
			out.Add(a)
			return true
		}
		for _, piece := range rw.ApplyInterval(iv) {
			for _, id := range n.AtomsOverlapping(piece) {
				out.Add(int(id))
			}
		}
		return true
	})
	return out
}

// ReachableWithTransforms computes the atoms arriving at `to` for traffic
// injected at `from`, where links may rewrite addresses. The returned set
// is expressed in arrival-time atoms (i.e. post-rewrite address space).
//
// The fixpoint matches Reachable when no transforms are present. With
// transforms the iteration is still monotone — each step only adds atoms —
// so it terminates.
func ReachableWithTransforms(n *core.Network, tf *Transforms, from, to netgraph.NodeID) *bitset.Set {
	sc := GetScratch()
	defer PutScratch(sc)
	g := n.Graph()
	reach := sc.beginFix(g.NumNodes())
	sc.queue = append(sc.queue, from)
	sc.inq[from] = sc.fixGen
	// Head-index ring over the scratch's retained worklist array; the
	// former `queue = queue[1:]` idiom bled capacity at the front on
	// every pop and re-copied on append once it ran out — O(n²)-prone
	// on long relaxation chains.
	for sc.head < len(sc.queue) {
		v := sc.queue[sc.head]
		sc.head++
		sc.inq[v] = 0
		for _, lid := range g.Out(v) {
			label := n.Label(lid)
			if label.Empty() {
				continue
			}
			var crossing *bitset.Set
			if v == from {
				crossing = label
			} else {
				sc.hop.AndOf(reach[v], label)
				if sc.hop.Empty() {
					continue
				}
				crossing = sc.hop
			}
			if rw, ok := tf.Get(lid); ok {
				crossing = transformAtomSet(n, crossing, rw)
			}
			w := g.Link(lid).Dst
			if reach[w] == nil {
				reach[w] = sc.reachSet(w, n.MaxAtomID())
			}
			before := reach[w].Len()
			reach[w].UnionWith(crossing)
			if reach[w].Len() != before && sc.inq[w] != sc.fixGen && w != from {
				sc.queue = append(sc.queue, w)
				sc.inq[w] = sc.fixGen
			}
		}
	}
	if reach[to] == nil {
		return bitset.New(0)
	}
	return reach[to].Clone()
}
