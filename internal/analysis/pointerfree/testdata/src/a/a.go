// Package a is the pointerfree analyzer's flagged fixture: every
// annotated type here smuggles a pointer in somewhere, mirroring the
// regression class the analyzer exists to block (a pointer field slipped
// into a sketch-like inline summary type).
package a

// Pair is a pointer-free component type, like intervalmap.Range.
type Pair struct {
	Lo, Hi int32
}

// SketchLike mirrors intervalmap.Sketch with a pointer field added —
// the exact seeded regression from the acceptance criteria.
//
//deltanet:pointerfree
type SketchLike struct { // want `contains a pointer: SketchLike\.spill: \*\[\]a\.Pair is a pointer`
	n     uint8
	r     [8]Pair
	spill *[]Pair
}

//deltanet:pointerfree
type HasSlice struct { // want `HasSlice\.rs: \[\]a\.Pair is a slice`
	rs []Pair
}

//deltanet:pointerfree
type HasString struct { // want `HasString\.name: string holds a data pointer`
	name string
}

//deltanet:pointerfree
type HasMap struct { // want `HasMap\.m: map\[int32\]a\.Pair is a map`
	m map[int32]Pair
}

// DeepPointer buries the pointer two levels down: inside an array of a
// named struct type.
//
//deltanet:pointerfree
type DeepPointer struct { // want `DeepPointer\.buf\[_\]\.next: \*a\.DeepInner is a pointer`
	buf [4]DeepInner
}

type DeepInner struct {
	v    int64
	next *DeepInner
}

//deltanet:pointerfree
type IfaceArray [2]interface{ Len() int } // want `IfaceArray\[_\]: .* is an interface`

// Suppressed has a pointer but carries a nolint with a reason, so no
// diagnostic may surface — this exercises the framework's suppression.
//
//deltanet:pointerfree
type Suppressed struct { //deltanet:nolint pointerfree fixture proves suppression works
	p *int
}
