// Command dnquery answers reachability and "what if" queries against a
// consistent data plane built from a dataset or trace file — the
// Datalog-style use cases of the paper's design goal 3 (§2.2, §4.3.2) —
// and tails standing-invariant events from a running dnserve.
//
// Usage:
//
//	dnquery [-scale f] [-trace file] <dataset> reach <nodeA> <nodeB>
//	dnquery [-scale f] [-trace file] <dataset> whatif <nodeA> <nodeB>
//	dnquery [-scale f] [-trace file] <dataset> loops
//	dnquery [-scale f] [-trace file] <dataset> allpairs
//	dnquery watch <addr>[,<addr>...] [<spec> ...]
//	dnquery metrics <url|host:port>
//
// Node arguments are node names from the topology (e.g. "s1", "delhi").
// With -trace, the dataset argument is ignored and the trace file is used.
//
// The watch subcommand connects to a dnserve instance, registers each
// spec as a standing invariant (the server's W grammar, e.g. "reach 0 2",
// "waypoint 0 3 1", "isolated 0,1 4,5", "loopfree", "blackholefree";
// node positions accept names as well as ids, and the server echoes
// names back in status and event lines),
// prints the server's status snapshot of every registered invariant, then
// streams verdict-transition events to stdout. With no specs it reports
// and follows the invariants other clients registered. The watch is
// durable (deltanet/client's Watcher): on disconnect it reconnects
// (bounded retries with backoff), re-registers its specs, and resumes
// with "watch since <seq>" from the last event sequence number it saw,
// so a dnserve restart — e.g. one bounced around a -state save/restore —
// costs no missed transitions as long as the server's event backlog
// still covers the gap (and an explicit gap line plus a fresh snapshot
// when it does not). The address may be a comma-separated list — a
// primary and its read replicas form one failover domain: replicas
// replay the primary's journal, so event sequence numbers mean the same
// transition on every address and the since-cursor survives failing
// over from one to another.
//
// The metrics subcommand fetches a dnserve admin endpoint's /metrics
// page (a bare host:port is expanded to http://host:port/metrics),
// strictly validates the Prometheus text exposition, and prints a
// per-family summary — the same validator the CI smoke test uses, so
// "dnquery metrics" passing means a scraper will parse the page.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"deltanet/client"
	"deltanet/internal/check"
	"deltanet/internal/core"
	"deltanet/internal/experiments"
	"deltanet/internal/intervalmap"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
	"deltanet/internal/trace"
)

func main() {
	scale := flag.Float64("scale", 1.0, "dataset scale factor")
	traceFile := flag.String("trace", "", "replay this trace file instead of generating a dataset")
	flag.Parse()
	args := flag.Args()
	if len(args) >= 2 && args[0] == "watch" {
		watch(args[1], args[2:])
		return
	}
	if len(args) == 2 && args[0] == "metrics" {
		scrapeMetrics(args[1])
		return
	}
	if len(args) < 2 {
		usage()
	}
	dataset, verb := args[0], args[1]

	var n *core.Network
	var g *netgraph.Graph
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			die(err)
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			die(err)
		}
		n = core.NewNetwork(tr.Graph, core.Options{})
		var d core.Delta
		for _, op := range tr.Ops {
			if op.Insert {
				if err := trace.Apply(n, op, &d); err != nil {
					die(err)
				}
			}
		}
		g = tr.Graph
	} else {
		var err error
		var tr *trace.Trace
		n, tr, err = experiments.BuildConsistentDataPlane(dataset, *scale)
		if err != nil {
			die(err)
		}
		g = tr.Graph
	}

	switch verb {
	case "reach":
		if len(args) != 4 {
			usage()
		}
		a, b := node(g, args[2]), node(g, args[3])
		atoms := check.Reachable(n, a, b)
		fmt.Printf("%d atom(s) can flow %s -> %s:\n", atoms.Len(), args[2], args[3])
		printRanges(n, atoms)
	case "whatif":
		if len(args) != 4 {
			usage()
		}
		a, b := node(g, args[2]), node(g, args[3])
		l := g.FindLink(a, b)
		if l == netgraph.NoLink {
			die(fmt.Errorf("no link %s -> %s", args[2], args[3]))
		}
		sub := check.AffectedByLinkFailure(n, l)
		fmt.Printf("failing %s -> %s affects %d atom(s) across %d labelled edge(s)\n",
			args[2], args[3], sub.Affected.Len(), sub.NumEdges())
		loops := check.LoopsInSubgraph(n, sub)
		fmt.Printf("loops among affected flows: %d\n", len(loops))
	case "loops":
		loops := check.FindLoopsAll(n)
		fmt.Printf("%d forwarding loop(s) in the data plane\n", len(loops))
		for i, l := range loops {
			if i >= 10 {
				fmt.Printf("... and %d more\n", len(loops)-10)
				break
			}
			iv, _ := n.AtomInterval(l.Atom)
			fmt.Printf("  loop for %v through %d nodes\n", iv, len(l.Nodes)-1)
		}
	case "allpairs":
		r := check.AllPairsParallel(n, 0)
		pairs, nonEmpty := 0, 0
		for i := range r {
			for j := range r[i] {
				if i == j {
					continue
				}
				pairs++
				if !r[i][j].Empty() {
					nonEmpty++
				}
			}
		}
		fmt.Printf("all-pairs reachability: %d/%d ordered pairs connected\n", nonEmpty, pairs)
	default:
		usage()
	}
}

func printRanges(n *core.Network, atoms interface {
	Contains(int) bool
	Len() int
}) {
	count := 0
	n.ForEachAtom(func(id intervalmap.AtomID, iv ipnet.Interval) bool {
		if !atoms.Contains(int(id)) {
			return true
		}
		count++
		if count > 20 {
			return false
		}
		lo := ipnet.FormatAddr(iv.Lo)
		fmt.Printf("  %v  (%s ...)\n", iv, lo)
		return true
	})
	if count > 20 {
		fmt.Printf("  ... and %d more\n", atoms.Len()-20)
	}
}

// watch tails the event stream of a dnserve instance (or a failover
// list of them) to stdout, via deltanet/client's durable Watcher:
// registration, resume-with-cursor, reconnection, and address rotation
// all live in the package; this command is printing.
func watch(addrList string, specs []string) {
	addrs := strings.Split(addrList, ",")
	w := client.NewWatcher(addrs, specs...)
	w.Notify = func(msg string) { fmt.Fprintln(os.Stderr, msg) }
	defer w.Close()
	for {
		line, err := w.Next()
		if err != nil {
			die(err)
		}
		fmt.Println(line)
	}
}

// scrapeMetrics validates target's Prometheus exposition and prints a
// per-family summary (see client.ScrapeMetrics for the URL expansion).
func scrapeMetrics(target string) {
	e, err := client.ScrapeMetrics(target)
	if err != nil {
		die(err)
	}
	fmt.Printf("ok: %s valid exposition, %d families, %d samples\n", e.URL, e.Families, e.Samples)
}

func node(g *netgraph.Graph, name string) netgraph.NodeID {
	id := g.NodeByName(name)
	if id == netgraph.NoNode {
		die(fmt.Errorf("unknown node %q", name))
	}
	return id
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  dnquery [-scale f] [-trace file] <dataset> reach <nodeA> <nodeB>
  dnquery [-scale f] [-trace file] <dataset> whatif <nodeA> <nodeB>
  dnquery [-scale f] [-trace file] <dataset> loops
  dnquery [-scale f] [-trace file] <dataset> allpairs
  dnquery watch <addr>[,<addr>...] [<spec> ...]
  dnquery metrics <url|host:port>`)
	os.Exit(2)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
