package deltanet

import (
	"deltanet/internal/check"
	"deltanet/internal/core"
)

// This file exposes the checker's advanced analyses: black holes,
// isolation and waypoint predicates (the paper's design-goal-3 queries),
// minimal equivalence classes (the Yang & Lam comparison of §5), packet
// transformations (§6 future work), and snapshot/digest utilities.

// Rewrite is a stateless destination-prefix translation attached to a
// link (§6: packet modification support).
type Rewrite = check.Rewrite

// Transforms maps links to rewrites for transform-aware reachability.
type Transforms = check.Transforms

// NewTransforms returns an empty transform table.
func NewTransforms() *Transforms { return check.NewTransforms() }

// ReachableAtomsVia computes reachability when links may rewrite
// addresses; the result is in arrival-time atoms.
func (c *Checker) ReachableAtomsVia(tf *Transforms, from, to SwitchID) *AtomSet {
	return check.ReachableWithTransforms(c.net, tf, from, to)
}

// BlackHole reports packets that arrive at a node no rule covers.
type BlackHole = check.BlackHole

// FindBlackHoles returns nodes that silently discard arriving traffic.
// sinks marks nodes that legitimately terminate flows (nil = none).
func (c *Checker) FindBlackHoles(sinks map[SwitchID]bool) []BlackHole {
	return check.FindBlackHoles(c.net, sinks)
}

// Isolated verifies that no packet in atoms (nil = any packet) can flow
// from any switch in groupA to any in groupB; it returns nil when
// isolated, else a witness atom set.
func (c *Checker) Isolated(groupA, groupB []SwitchID, atoms *AtomSet) *AtomSet {
	return check.Isolated(c.net, groupA, groupB, atoms)
}

// BypassesWaypoint returns the atoms that can flow from one switch to
// another without traversing the waypoint (empty = the waypoint property
// holds).
func (c *Checker) BypassesWaypoint(from, to, waypoint SwitchID) *AtomSet {
	return check.Waypoint(c.net, from, to, waypoint)
}

// MinimalECs groups atoms by identical network-wide behaviour — the
// unique minimal partition Yang & Lam's atomic predicates compute (§5).
// Delta-net's atom count divided by len(MinimalECs()) measures how much
// compactness its quasi-linear updates trade away.
func (c *Checker) MinimalECs() []check.ECClass { return check.MinimalECs(c.net) }

// Snapshot returns the live rules sorted by id; Restore into a fresh
// Checker over the same topology reproduces the behaviour.
func (c *Checker) Snapshot() []Rule { return c.net.Snapshot() }

// Restore loads a snapshot into an empty Checker.
func (c *Checker) Restore(rules []Rule) error { return c.net.Restore(rules) }

// BehaviourDigest hashes the complete forwarding behaviour in canonical,
// atom-id-independent form; equal digests ⇔ identical per-link flows.
func (c *Checker) BehaviourDigest() uint64 { return c.net.BehaviourDigest() }

// LinkFlows returns a link's flows as merged address intervals.
func (c *Checker) LinkFlows(l LinkID) []Interval { return c.net.LinkFlows(l) }

// BehaviourEqual reports whether two checkers over identically numbered
// topologies forward exactly the same packets on every link.
func BehaviourEqual(a, b *Checker) bool { return core.BehaviourEqual(a.net, b.net) }
