// Command deltanet replays a trace file through the Delta-net checker,
// verifying loop freedom on every rule update and printing a summary —
// the paper's per-update checking pipeline (§4.3.1) as a standalone tool.
//
// Usage:
//
//	deltanet [-gc] [-quiet] trace.txt
//	dngen 4switch | deltanet -        # read from stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"deltanet/internal/check"
	"deltanet/internal/core"
	"deltanet/internal/stats"
	"deltanet/internal/trace"
)

func main() {
	gc := flag.Bool("gc", false, "enable atom garbage collection")
	quiet := flag.Bool("quiet", false, "suppress per-loop diagnostics")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: deltanet [-gc] [-quiet] <trace.txt | ->")
		os.Exit(2)
	}
	var in io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	tr, err := trace.Read(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	n := core.NewNetwork(tr.Graph, core.Options{GC: *gc})
	lat := stats.NewLatencies(len(tr.Ops))
	loops := 0
	var d core.Delta
	for i, op := range tr.Ops {
		t0 := time.Now()
		if err := trace.Apply(n, op, &d); err != nil {
			fmt.Fprintf(os.Stderr, "op %d: %v\n", i, err)
			os.Exit(1)
		}
		found := check.FindLoopsDelta(n, &d)
		lat.Add(time.Since(t0))
		if len(found) > 0 {
			loops += len(found)
			if !*quiet {
				for _, l := range found {
					iv, _ := n.AtomInterval(l.Atom)
					fmt.Printf("op %d (rule %d): forwarding loop for %v via %d nodes\n",
						i, d.Rule, iv, len(l.Nodes)-1)
				}
			}
		}
	}

	fmt.Printf("trace:      %s\n", tr.Name)
	fmt.Printf("operations: %d (%d inserts)\n", len(tr.Ops), tr.NumInserts())
	fmt.Printf("rules live: %d\n", n.NumRules())
	fmt.Printf("atoms:      %d (splits %d, merges %d)\n", n.NumAtoms(), n.Splits(), n.Merges())
	fmt.Printf("loops:      %d update(s) flagged\n", loops)
	fmt.Printf("latency:    median %s, average %s, p99 %s, max %s\n",
		stats.FormatMicros(lat.Median()), stats.FormatMicros(lat.Mean()),
		stats.FormatMicros(lat.Percentile(99)), stats.FormatMicros(lat.Max()))
	fmt.Printf("< 250µs:    %.2f%%\n", lat.FractionBelow(250*time.Microsecond)*100)
}
