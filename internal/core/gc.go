package core

// Atom garbage collection: the optional extension the paper sketches in
// §3.2.2 ("akin to garbage collection, we could reclaim the unused atom
// identifier(s). This 'garbage collection' mechanism is omitted from
// Algorithm 2."). We implement it behind Options.GC.
//
// The engine refcounts every interval boundary by the number of live rules
// using it as a lower or upper bound. When a removal drops a boundary's
// count to zero, the boundary key is deleted from M and the atom that
// started at it merges into its predecessor atom.
//
// Correctness of the merge: once no rule has a bound at b, every live rule
// whose interval intersects the atom [b:c) fully covers both [a:b) and
// [b:c) (rule bounds are always keys of M), so the owner state of the two
// atoms is identical as a set of rules. Dropping the upper atom therefore
// loses no information: the predecessor atom's labels already describe the
// merged interval. We only need to clear the dropped atom's label bits and
// owner trees, and recycle its id.

// collectBound decrements the refcount of bound and merges atoms if it hits
// zero. MIN and MAX are permanent (they are not refcounted above zero by
// construction: intervalmap refuses to release them).
func (n *Network) collectBound(bound uint64) {
	c := n.bounds[bound] - 1
	if c > 0 {
		n.bounds[bound] = c
		return
	}
	delete(n.bounds, bound)
	n.releaseBound(bound)
}

// releaseBound deletes an unreferenced boundary from M and merges the atom
// that started at it into its predecessor. Callers must already have
// removed the bound's refcount entry. Batch updates defer this step so
// that a boundary removed and re-added within one batch is never merged
// out from under the re-adding rule.
func (n *Network) releaseBound(bound uint64) {
	id, ok := n.m.ReleaseBound(bound)
	if !ok {
		return // MIN or MAX
	}
	n.merges++
	// Clear the dead atom's label bits: for each source with rules
	// containing the atom, the owner's link carried the bit. The owner
	// table keeps its backing arrays for the id's next incarnation.
	if int(id) < len(n.owner) {
		oa := &n.owner[id]
		for i := range oa.cells {
			c := oa.cells[i]
			top := oa.slab[c.off+c.n-1]
			n.labelOf(n.store.recs[top].Link).Remove(int(id))
		}
		oa.reset()
	}
}
