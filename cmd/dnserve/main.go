// Command dnserve runs the Delta-net checker as a TCP service (the
// sidecar deployment of the paper's Figure 7): controllers stream rule
// updates as protocol lines and receive per-update verification verdicts.
//
// Usage:
//
//	dnserve [-addr host:port] [-gc] [-trace file]
//
// With -trace, the topology and insertions of the trace are preloaded
// before serving. See internal/server for the protocol.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"deltanet/internal/core"
	"deltanet/internal/netgraph"
	"deltanet/internal/server"
	"deltanet/internal/trace"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6633", "listen address")
	gc := flag.Bool("gc", false, "enable atom garbage collection")
	traceFile := flag.String("trace", "", "preload this trace's topology and insertions")
	flag.Parse()

	s := server.New(core.Options{GC: *gc})
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		// Rebuild the topology into the server's graph so protocol ids
		// match the trace's.
		for v := netgraph.NodeID(0); int(v) < tr.Graph.NumNodes(); v++ {
			s.Graph().AddNode(tr.Graph.NodeName(v))
		}
		for _, l := range tr.Graph.Links() {
			s.Graph().AddLink(l.Src, l.Dst)
		}
		var d core.Delta
		for _, op := range tr.Ops {
			if !op.Insert {
				continue
			}
			if err := trace.Apply(s.Network(), op, &d); err != nil {
				fatal(err)
			}
		}
		fmt.Fprintf(os.Stderr, "preloaded %s: %d rules, %d atoms\n",
			tr.Name, s.Network().NumRules(), s.Network().NumAtoms())
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "dnserve listening on %s\n", l.Addr())
	if err := s.Serve(l); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
