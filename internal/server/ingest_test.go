package server

import (
	"fmt"
	"regexp"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"deltanet/internal/binproto"
	"deltanet/internal/core"
	"deltanet/internal/ipnet"
	"deltanet/internal/monitor"
	"deltanet/internal/netgraph"
)

func insOp(id int64, src, link int32, lo, hi uint64, prio int32) core.BatchOp {
	return core.InsertOp(core.Rule{
		ID:       core.RuleID(id),
		Source:   netgraph.NodeID(src),
		Link:     netgraph.LinkID(link),
		Match:    ipnet.Interval{Lo: lo, Hi: hi},
		Priority: core.Priority(prio),
	})
}

// opText renders an op as its line-protocol text (the oracle's input).
func opText(op core.BatchOp) string {
	var b strings.Builder
	appendOpLine(&b, &op)
	return b.String()
}

// buildTriangle installs a 3-node cycle topology: link 0 a->b, link 1
// b->c, link 2 c->a.
func buildTriangle(t *testing.T, c *client) {
	t.Helper()
	for _, req := range []string{"node a", "node b", "node c", "link 0 1", "link 1 2", "link 2 0"} {
		if got := c.roundTrip(t, req); !strings.HasPrefix(got, "ok ") {
			t.Fatalf("%s: %q", req, got)
		}
	}
}

// sendBatch drives the oracle's line-protocol B command.
func (c *client) sendOpsBatch(t *testing.T, ops []core.BatchOp) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "B %d\n", len(ops))
	for _, op := range ops {
		b.WriteString(opText(op))
		b.WriteByte('\n')
	}
	if _, err := c.conn.Write([]byte(b.String())); err != nil {
		t.Fatal(err)
	}
	if !c.r.Scan() {
		t.Fatalf("no batch response: %v", c.r.Err())
	}
	return c.r.Text()
}

// pullEvents replays the full retained event stream, with the upd= and
// seq= fields (which legitimately differ across batching strategies)
// masked out.
func pullEvents(t *testing.T, c *client) []string {
	t.Helper()
	resp := c.roundTrip(t, "events since 0")
	var n int
	if _, err := fmt.Sscanf(resp, "ok events n=%d", &n); err != nil {
		t.Fatalf("events: %q", resp)
	}
	strip := regexp.MustCompile(` upd=\d+:\d+ seq=\d+`)
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if !c.r.Scan() {
			t.Fatalf("event stream truncated at %d/%d: %v", i, n, c.r.Err())
		}
		out = append(out, strip.ReplaceAllString(c.r.Text(), ""))
	}
	return out
}

// equivalenceFrames is the shared op script: build paths, complete a
// loop, clear it, then churn rules that change no verdict. Transitions
// never straddle a frame boundary, so the event stream is invariant to
// how the ingest coalescer sub-batches a frame.
func equivalenceFrames() [][]core.BatchOp {
	f1 := []core.BatchOp{insOp(1, 0, 0, 0, 100, 1), insOp(2, 1, 1, 0, 100, 1)}
	f2 := []core.BatchOp{insOp(3, 2, 2, 0, 100, 1)} // completes the a->b->c->a loop
	f3 := []core.BatchOp{core.RemoveOp(3)}
	var f4 []core.BatchOp
	for i := int64(0); i < 64; i++ {
		link := int32(0)
		if i%7 == 0 {
			link = -1 // sprinkle drop rules through the stream
		}
		f4 = append(f4, insOp(100+i, 0, link, uint64(200+4*i), uint64(202+4*i), int32(2+i%3)))
	}
	var f5 []core.BatchOp
	for i := int64(0); i < 32; i++ {
		f5 = append(f5, core.RemoveOp(core.RuleID(100+i)))
	}
	return [][]core.BatchOp{f1, f2, f3, f4, f5}
}

// TestBinaryLineEquivalence replays the same op script through the line
// protocol's B batches (the oracle) and through binary frames + the
// ingest ring, and requires identical verdicts: same engine sizes, same
// reachability answers, and the same invariant event stream.
func TestBinaryLineEquivalence(t *testing.T) {
	// Oracle: line protocol.
	_, lineAddr, lineCleanup := startServer(t)
	defer lineCleanup()
	lc := dial(t, lineAddr)
	defer lc.close()
	buildTriangle(t, lc)
	lc.roundTrip(t, "W loopfree")
	lc.roundTrip(t, "W reach 0 2")
	for i, frame := range equivalenceFrames() {
		if got := lc.sendOpsBatch(t, frame); !strings.HasPrefix(got, "ok batch") {
			t.Fatalf("oracle frame %d: %q", i, got)
		}
	}

	// Subject: binary protocol into the ingest ring.
	_, binAddr, binCleanup := startServer(t)
	defer binCleanup()
	bc := dial(t, binAddr)
	defer bc.close()
	buildTriangle(t, bc)
	bc.roundTrip(t, "W loopfree")
	bc.roundTrip(t, "W reach 0 2")
	if got := bc.roundTrip(t, "dnbin 1"); got != "ok dnbin 1" {
		t.Fatalf("handshake: %q", got)
	}
	var buf []byte
	total := 0
	for i, frame := range equivalenceFrames() {
		buf = binproto.AppendOps(buf[:0], frame)
		buf = binproto.AppendSync(buf, uint64(i+1))
		if _, err := bc.conn.Write(buf); err != nil {
			t.Fatal(err)
		}
		total += len(frame)
		if !bc.r.Scan() {
			t.Fatalf("no sync response for frame %d: %v", i, bc.r.Err())
		}
		want := fmt.Sprintf("ok sync %d applied=%d", i+1, total)
		if got := bc.r.Text(); got != want {
			t.Fatalf("frame %d: %q, want %q", i, got, want)
		}
	}

	// The binary session stays in frame mode; verdicts are compared over
	// fresh line connections to each server.
	lq := dial(t, lineAddr)
	defer lq.close()
	bq := dial(t, binAddr)
	defer bq.close()
	for _, req := range []string{"reach 0 1", "reach 0 2", "reach 1 2"} {
		lg, bg := lq.roundTrip(t, req), bq.roundTrip(t, req)
		if lg != bg {
			t.Errorf("%s: oracle %q, binary %q", req, lg, bg)
		}
	}
	lstats, bstats := lq.roundTrip(t, "stats"), bq.roundTrip(t, "stats")
	for _, key := range []string{"rules=", "atoms=", "watch="} {
		lv, bv := statField(lstats, key), statField(bstats, key)
		if lv != bv {
			t.Errorf("stats %s oracle %q, binary %q", key, lv, bv)
		}
	}
	if got := statField(bstats, "ring="); got != "0" {
		t.Errorf("ring= after quiesce: %q (stats %q)", got, bstats)
	}
	lev, bev := pullEvents(t, lq), pullEvents(t, bq)
	if len(lev) == 0 {
		t.Fatal("oracle produced no events; the script should transition verdicts")
	}
	if fmt.Sprint(lev) != fmt.Sprint(bev) {
		t.Errorf("event streams diverge:\noracle: %v\nbinary: %v", lev, bev)
	}
}

func statField(stats, prefix string) string {
	for _, f := range strings.Fields(stats) {
		if v, ok := strings.CutPrefix(f, prefix); ok {
			return v
		}
	}
	return ""
}

// TestBinaryBackpressure slows every apply down and firehoses a frame
// much larger than the ring: the server must emit an explicit busy
// line, never buffer beyond the ring's capacity, and still apply every
// op once the consumer catches up — backpressure, not drops.
func TestBinaryBackpressure(t *testing.T) {
	const ringCap = 4
	s, addr, cleanup := startServer(t, WithIngestRing(ringCap))
	defer cleanup()
	var slow atomic.Bool
	s.mon.SetTraceSink(func(at monitor.ApplyTrace) {
		if slow.Load() {
			time.Sleep(2 * time.Millisecond)
		}
		s.onApplyTrace(at)
	})
	c := dial(t, addr)
	defer c.close()
	for _, req := range []string{"node a", "node b", "link 0 1"} {
		c.roundTrip(t, req)
	}
	if got := c.roundTrip(t, "dnbin 1"); got != "ok dnbin 1" {
		t.Fatalf("handshake: %q", got)
	}
	slow.Store(true)
	const n = 64
	ops := make([]core.BatchOp, n)
	for i := range ops {
		ops[i] = insOp(int64(i+1), 0, 0, uint64(i*10), uint64(i*10+5), 1)
	}
	if _, err := c.conn.Write(binproto.AppendOps(nil, ops)); err != nil {
		t.Fatal(err)
	}
	// The producer outruns the slowed consumer by construction, so the
	// next line must be the backpressure notice.
	if !c.r.Scan() {
		t.Fatalf("no busy line: %v", c.r.Err())
	}
	if got := c.r.Text(); !strings.HasPrefix(got, "busy depth=") {
		t.Fatalf("expected busy line, got %q", got)
	}
	if d := s.ing.ring.Load().Depth(); d > ringCap {
		t.Fatalf("ring depth %d exceeds capacity %d", d, ringCap)
	}
	slow.Store(false)
	if _, err := c.conn.Write(binproto.AppendSync(nil, 7)); err != nil {
		t.Fatal(err)
	}
	if !c.r.Scan() {
		t.Fatalf("no sync response: %v", c.r.Err())
	}
	if got := c.r.Text(); got != fmt.Sprintf("ok sync 7 applied=%d", n) {
		t.Fatalf("sync: %q", got)
	}
	if got := s.ing.rejected.Load(); got != 0 {
		t.Fatalf("%d ops rejected; want 0", got)
	}
	q := dial(t, addr)
	defer q.close()
	stats := q.roundTrip(t, "stats")
	if got := statField(stats, "rules="); got != fmt.Sprint(n) {
		t.Fatalf("rules=%s after backpressured ingest, want %d (stats %q)", got, n, stats)
	}
	if got := statField(stats, "ring="); got != "0" {
		t.Fatalf("ring=%s after sync, want 0", got)
	}
}

// TestBinaryHandshakeAndRejects covers the refusal paths: a bad
// handshake keeps the line loop alive, and a frame naming unknown
// topology is dropped whole (the next sync covers only accepted ops).
func TestBinaryHandshakeAndRejects(t *testing.T) {
	_, addr, cleanup := startServer(t)
	defer cleanup()
	c := dial(t, addr)
	defer c.close()
	for _, req := range []string{"node a", "node b", "link 0 1"} {
		c.roundTrip(t, req)
	}
	if got := c.roundTrip(t, "dnbin 2"); got != "err usage: dnbin 1" {
		t.Fatalf("bad version: %q", got)
	}
	if got := c.roundTrip(t, "stats"); !strings.HasPrefix(got, "ok stats") {
		t.Fatalf("line loop dead after refused handshake: %q", got)
	}
	if got := c.roundTrip(t, "dnbin 1"); got != "ok dnbin 1" {
		t.Fatalf("handshake: %q", got)
	}
	var buf []byte
	buf = binproto.AppendOps(buf, []core.BatchOp{
		insOp(1, 0, 0, 0, 10, 1),
		insOp(2, 9, 0, 0, 10, 1), // node 9 does not exist: frame dropped whole
	})
	buf = binproto.AppendOps(buf, []core.BatchOp{insOp(3, 0, 5, 0, 10, 1)}) // link 5: dropped
	buf = binproto.AppendOps(buf, []core.BatchOp{insOp(4, 1, -1, 0, 10, 1)})
	buf = binproto.AppendSync(buf, 1)
	if _, err := c.conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	wants := []string{
		"err frame op 1: unknown node id",
		"err frame op 0: unknown link id",
		"ok sync 1 applied=1",
	}
	for _, want := range wants {
		if !c.r.Scan() {
			t.Fatalf("stream ended awaiting %q: %v", want, c.r.Err())
		}
		if got := c.r.Text(); got != want {
			t.Fatalf("got %q, want %q", got, want)
		}
	}
}

// TestIngestOpsBarrier drives the in-process feed entrance: ops flow
// through the same validated ring path and IngestBarrier quiesces.
func TestIngestOpsBarrier(t *testing.T) {
	s, addr, cleanup := startServer(t)
	defer cleanup()
	c := dial(t, addr)
	defer c.close()
	for _, req := range []string{"node a", "node b", "link 0 1"} {
		c.roundTrip(t, req)
	}
	ops := make([]core.BatchOp, 16)
	for i := range ops {
		ops[i] = insOp(int64(i+1), 0, 0, uint64(i*8), uint64(i*8+3), 1)
	}
	if !s.IngestOps(ops) {
		t.Fatal("IngestOps refused a valid slice")
	}
	if n := s.IngestBarrier(); n != uint64(len(ops)) {
		t.Fatalf("barrier applied=%d, want %d", n, len(ops))
	}
	if s.IngestOps([]core.BatchOp{insOp(99, 42, 0, 0, 1, 1)}) {
		t.Fatal("IngestOps accepted an op naming an unknown node")
	}
	if got := c.roundTrip(t, "reach 0 1"); got != "ok reach 16" {
		t.Fatalf("reach after feed: %q", got)
	}
}

// TestParseUpdateLineZeroAlloc pins the hot-path property the field
// scanner exists for: parsing an I or R line allocates nothing.
func TestParseUpdateLineZeroAlloc(t *testing.T) {
	s := New()
	a := s.Graph().AddNode("a")
	b := s.Graph().AddNode("b")
	s.Graph().AddLink(a, b)
	for _, line := range []string{"I 7 0 0 0 4096 9", "R 7"} {
		allocs := testing.AllocsPerRun(200, func() {
			if _, msg := s.parseUpdateLine(line); msg != "" {
				t.Fatal(msg)
			}
		})
		if allocs != 0 {
			t.Errorf("parseUpdateLine(%q): %.1f allocs/op, want 0", line, allocs)
		}
	}
	s.Close()
}

// BenchmarkParseUpdateLine is the -benchmem pin for the allocation-free
// scanner (strings.Fields used to cost one []string per line here).
func BenchmarkParseUpdateLine(b *testing.B) {
	s := New()
	defer s.Close()
	n0 := s.Graph().AddNode("a")
	n1 := s.Graph().AddNode("b")
	s.Graph().AddLink(n0, n1)
	line := "I 123456 0 0 281470681743360 281470681743615 40"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, msg := s.parseUpdateLine(line); msg != "" {
			b.Fatal(msg)
		}
	}
}
