// Package routes compiles IP prefixes into forwarding rules over a
// topology, following the dataset-generation mechanism of the paper
// (§4.2.1, "the same mechanism as in [59] (Libra)"): for each prefix an
// egress node is chosen and shortest paths are computed toward it; every
// other node gets a rule forwarding the prefix to its next hop on the
// shortest-path tree.
package routes

import (
	"math/rand"

	"deltanet/internal/core"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
)

// ShortestPathTree returns, for every node, the out-link taken toward the
// root on some shortest path (BFS over reversed links), or
// netgraph.NoLink for the root and for nodes that cannot reach it. blocked
// links are treated as absent (used for failure rerouting).
func ShortestPathTree(g *netgraph.Graph, root netgraph.NodeID, blocked map[netgraph.LinkID]bool) []netgraph.LinkID {
	next := make([]netgraph.LinkID, g.NumNodes())
	for i := range next {
		next[i] = netgraph.NoLink
	}
	visited := make([]bool, g.NumNodes())
	visited[root] = true
	queue := []netgraph.NodeID{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		// Expand backwards: any link u→v lets u reach the root via v.
		for _, lid := range g.In(v) {
			if blocked[lid] {
				continue
			}
			u := g.Link(lid).Src
			if visited[u] {
				continue
			}
			visited[u] = true
			next[u] = lid
			queue = append(queue, u)
		}
	}
	return next
}

// Compiler turns prefixes into rules.
type Compiler struct {
	g      *netgraph.Graph
	rng    *rand.Rand
	nextID core.RuleID

	// RandomPriority assigns each rule an independent random priority
	// (the paper's synthetic datasets: "rules are inserted with a random
	// priority"). When false, priority equals the prefix length
	// (longest-prefix match, as SDN-IP sets it).
	RandomPriority bool
}

// NewCompiler returns a deterministic compiler over the topology.
func NewCompiler(g *netgraph.Graph, seed int64) *Compiler {
	return &Compiler{g: g, rng: rand.New(rand.NewSource(seed)), nextID: 1}
}

// RulesForPrefix compiles one prefix: an egress is chosen (uniformly, from
// switches), and every node that can reach it contributes one rule along
// its shortest-path next hop. The returned rules have fresh ids.
func (c *Compiler) RulesForPrefix(p ipnet.Prefix, switches []netgraph.NodeID) []core.Rule {
	egress := switches[c.rng.Intn(len(switches))]
	return c.RulesForPrefixAt(p, egress, nil)
}

// RulesForPrefixAt compiles one prefix toward the given egress, skipping
// blocked links.
func (c *Compiler) RulesForPrefixAt(p ipnet.Prefix, egress netgraph.NodeID, blocked map[netgraph.LinkID]bool) []core.Rule {
	next := ShortestPathTree(c.g, egress, blocked)
	var out []core.Rule
	for v := netgraph.NodeID(0); int(v) < len(next); v++ {
		if next[v] == netgraph.NoLink {
			continue
		}
		prio := core.Priority(p.Len)
		if c.RandomPriority {
			prio = core.Priority(c.rng.Intn(1 << 16))
		}
		out = append(out, core.Rule{
			ID:       c.nextID,
			Source:   v,
			Link:     next[v],
			Match:    p.Interval(),
			Priority: prio,
		})
		c.nextID++
	}
	return out
}

// NextID returns the next rule id the compiler will hand out.
func (c *Compiler) NextID() core.RuleID { return c.nextID }
