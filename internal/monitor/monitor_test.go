package monitor

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"deltanet/internal/bitset"
	"deltanet/internal/check"
	"deltanet/internal/core"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
)

// line4 builds a -> b -> c -> d and returns the graph, nodes, and links.
func line4() (*netgraph.Graph, []netgraph.NodeID, []netgraph.LinkID) {
	g := netgraph.New()
	var nodes []netgraph.NodeID
	for _, name := range []string{"a", "b", "c", "d"} {
		nodes = append(nodes, g.AddNode(name))
	}
	var links []netgraph.LinkID
	for i := 0; i+1 < len(nodes); i++ {
		links = append(links, g.AddLink(nodes[i], nodes[i+1]))
	}
	return g, nodes, links
}

func mustInsert(t *testing.T, n *core.Network, m *Monitor, r core.Rule) []Event {
	t.Helper()
	var d core.Delta
	if err := n.InsertRuleInto(r, &d); err != nil {
		t.Fatal(err)
	}
	return m.Apply(&d)
}

func mustRemove(t *testing.T, n *core.Network, m *Monitor, id core.RuleID) []Event {
	t.Helper()
	var d core.Delta
	if err := n.RemoveRuleInto(id, &d); err != nil {
		t.Fatal(err)
	}
	return m.Apply(&d)
}

// TestTransitions walks one invariant through violation and clearing and
// checks the events and cached status at each step.
func TestTransitions(t *testing.T) {
	g, nodes, links := line4()
	n := core.NewNetwork(g, core.Options{})
	m := New(n, 0)

	id, st := m.Register(Reachable{From: nodes[0], To: nodes[2]})
	if st != Violated {
		t.Fatalf("empty data plane: status %v, want violated", st)
	}

	// a->b alone does not reach c: no transition.
	ev := mustInsert(t, n, m, core.Rule{ID: 1, Source: nodes[0], Link: links[0],
		Match: ipnet.Interval{Lo: 0, Hi: 100}, Priority: 1})
	if len(ev) != 0 {
		t.Fatalf("partial path events: %v", ev)
	}

	// b->c completes the path: Cleared.
	ev = mustInsert(t, n, m, core.Rule{ID: 2, Source: nodes[1], Link: links[1],
		Match: ipnet.Interval{Lo: 0, Hi: 100}, Priority: 1})
	if len(ev) != 1 || ev[0].Kind != Cleared || ev[0].ID != id {
		t.Fatalf("clear events: %v", ev)
	}
	if st, _, _ := m.Status(id); st != Holds {
		t.Fatalf("status after clear: %v", st)
	}

	// Removing the first hop breaks it again: Violation.
	ev = mustRemove(t, n, m, 1)
	if len(ev) != 1 || ev[0].Kind != Violation || ev[0].ID != id {
		t.Fatalf("violation events: %v", ev)
	}
	if ev[0].Seq != 2 {
		t.Fatalf("event seq: %d, want 2", ev[0].Seq)
	}
}

// TestDependencySkipping verifies the incremental core: churn in one
// component must not re-evaluate invariants whose dependency sets live in
// another.
func TestDependencySkipping(t *testing.T) {
	g := netgraph.New()
	// Two disconnected 2-node components.
	a1, a2 := g.AddNode("a1"), g.AddNode("a2")
	b1, b2 := g.AddNode("b1"), g.AddNode("b2")
	la := g.AddLink(a1, a2)
	lb := g.AddLink(b1, b2)
	n := core.NewNetwork(g, core.Options{})
	m := New(n, 0)

	var d core.Delta
	if err := n.InsertRuleInto(core.Rule{ID: 1, Source: a1, Link: la,
		Match: ipnet.Interval{Lo: 0, Hi: 50}, Priority: 1}, &d); err != nil {
		t.Fatal(err)
	}
	if err := n.InsertRuleInto(core.Rule{ID: 2, Source: b1, Link: lb,
		Match: ipnet.Interval{Lo: 0, Hi: 50}, Priority: 1}, &d); err != nil {
		t.Fatal(err)
	}

	m.Register(Reachable{From: a1, To: a2})
	m.Register(Reachable{From: b1, To: b2})

	// Churn only component A.
	for i := 0; i < 10; i++ {
		mustInsert(t, n, m, core.Rule{ID: core.RuleID(100 + i), Source: a1, Link: la,
			Match: ipnet.Interval{Lo: uint64(100 + i), Hi: uint64(200 + i)}, Priority: 5})
	}
	// Component A's invariant depends only on la, B's only on lb: every
	// one of the 10 updates must evaluate A and skip B.
	st := m.Stats()
	if st.Evaluations != 10 || st.Skips != 10 {
		t.Fatalf("stats %+v: want 10 evaluations and 10 skips", st)
	}
	if got, _, _ := m.Status(1); got != Holds {
		t.Fatalf("component-B invariant status: %v", got)
	}
}

// TestUnregister: an unregistered invariant stops producing events and
// queries fail.
func TestUnregister(t *testing.T) {
	g, nodes, links := line4()
	n := core.NewNetwork(g, core.Options{})
	m := New(n, 0)
	id, _ := m.Register(Reachable{From: nodes[0], To: nodes[1]})
	if !m.Unregister(id) {
		t.Fatal("unregister known id failed")
	}
	if m.Unregister(id) {
		t.Fatal("double unregister succeeded")
	}
	if _, _, ok := m.Status(id); ok {
		t.Fatal("status of unregistered id")
	}
	if ev := mustInsert(t, n, m, core.Rule{ID: 1, Source: nodes[0], Link: links[0],
		Match: ipnet.Interval{Lo: 0, Hi: 10}, Priority: 1}); len(ev) != 0 {
		t.Fatalf("events after unregister: %v", ev)
	}
}

// TestSubscription: events reach subscribers; a full buffer drops rather
// than blocks; cancel closes the channel.
func TestSubscription(t *testing.T) {
	g, nodes, links := line4()
	n := core.NewNetwork(g, core.Options{})
	m := New(n, 0)
	m.Register(Reachable{From: nodes[0], To: nodes[1]})

	sub := m.Subscribe(1)
	done := make(chan []Event)
	go func() {
		var got []Event
		for ev := range sub.C {
			got = append(got, ev)
		}
		done <- got
	}()

	mustInsert(t, n, m, core.Rule{ID: 1, Source: nodes[0], Link: links[0],
		Match: ipnet.Interval{Lo: 0, Hi: 10}, Priority: 1}) // Cleared
	mustRemove(t, n, m, 1) // Violation
	sub.Cancel()
	sub.Cancel() // idempotent

	got := <-done
	if len(got)+int(sub.Dropped()) != 2 {
		t.Fatalf("delivered %d + dropped %d, want 2 total", len(got), sub.Dropped())
	}
	if len(got) == 0 {
		t.Fatal("everything dropped from an actively drained subscription")
	}
}

// TestSubscriberDrop: an undrained buffer of size 1 must drop the second
// event, not deadlock the update path.
func TestSubscriberDrop(t *testing.T) {
	g, nodes, links := line4()
	n := core.NewNetwork(g, core.Options{})
	m := New(n, 0)
	m.Register(Reachable{From: nodes[0], To: nodes[1]})
	sub := m.Subscribe(1)
	mustInsert(t, n, m, core.Rule{ID: 1, Source: nodes[0], Link: links[0],
		Match: ipnet.Interval{Lo: 0, Hi: 10}, Priority: 1})
	mustRemove(t, n, m, 1)
	if sub.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", sub.Dropped())
	}
	sub.Cancel()
}

// churnTopo builds a topology with cycles (so loops can form), dead ends
// (so black holes can form), and enough nodes for interesting queries:
// a ring 0..5 with chords and two stub nodes hanging off it.
func churnTopo() (*netgraph.Graph, []netgraph.NodeID, []netgraph.LinkID) {
	g := netgraph.New()
	var nodes []netgraph.NodeID
	for i := 0; i < 8; i++ {
		nodes = append(nodes, g.AddNode(fmt.Sprintf("n%d", i)))
	}
	var links []netgraph.LinkID
	addLink := func(a, b int) {
		links = append(links, g.AddLink(nodes[a], nodes[b]))
	}
	for i := 0; i < 6; i++ { // ring
		addLink(i, (i+1)%6)
	}
	addLink(0, 3) // chords
	addLink(4, 1)
	addLink(2, 6) // stubs
	addLink(5, 7)
	return g, nodes, links
}

// TestEquivalenceUnderChurn is the monitor's ground-truth test: under a
// randomized insert/remove/batch workload, after EVERY update, every
// cached verdict must equal a from-scratch evaluation of the same query.
func TestEquivalenceUnderChurn(t *testing.T) {
	for _, gc := range []bool{false, true} {
		gc := gc
		t.Run(fmt.Sprintf("gc=%v", gc), func(t *testing.T) {
			testEquivalenceUnderChurn(t, gc)
		})
	}
}

func testEquivalenceUnderChurn(t *testing.T, gc bool) {
	rng := rand.New(rand.NewSource(42))
	g, nodes, links := churnTopo()
	n := core.NewNetwork(g, core.Options{GC: gc})
	m := New(n, 0)

	sinks := map[netgraph.NodeID]bool{nodes[6]: true, nodes[7]: true}

	// One oracle per registered invariant: violated, from scratch?
	type regInv struct {
		id     ID
		spec   Spec
		oracle func() bool
	}
	var invs []regInv
	reg := func(s Spec, oracle func() bool) {
		id, _ := m.Register(s)
		invs = append(invs, regInv{id: id, spec: s, oracle: oracle})
	}
	for i := 0; i < 6; i++ {
		from, to := nodes[i], nodes[(i+3)%8]
		reg(Reachable{From: from, To: to}, func() bool {
			return check.Reachable(n, from, to).Empty()
		})
	}
	for i := 0; i < 4; i++ {
		from, to, via := nodes[i], nodes[(i+2)%6], nodes[(i+1)%6]
		reg(Waypoint{From: from, To: to, Via: via}, func() bool {
			return !check.Waypoint(n, from, to, via).Empty()
		})
	}
	ga := []netgraph.NodeID{nodes[0], nodes[1]}
	gb := []netgraph.NodeID{nodes[6], nodes[7]}
	reg(Isolated{GroupA: ga, GroupB: gb}, func() bool {
		return check.Isolated(n, ga, gb, nil) != nil
	})
	reg(LoopFree{}, func() bool {
		return len(check.FindLoopsAll(n)) > 0
	})
	reg(BlackHoleFree{Sinks: sinks}, func() bool {
		return len(check.FindBlackHoles(n, sinks)) > 0
	})

	verify := func(step int, what string) {
		t.Helper()
		for _, inv := range invs {
			got, detail, ok := m.Status(inv.id)
			if !ok {
				t.Fatalf("step %d: invariant %d vanished", step, inv.id)
			}
			want := Holds
			if inv.oracle() {
				want = Violated
			}
			if got != want {
				t.Fatalf("step %d (%s): %v: monitor says %v (%s), scratch says %v",
					step, what, inv.spec, got, detail, want)
			}
		}
	}

	var live []core.RuleID
	nextID := core.RuleID(1)
	randomRule := func() core.Rule {
		l := links[rng.Intn(len(links))]
		src := g.Link(l).Src
		lo := uint64(rng.Intn(1 << 12))
		r := core.Rule{
			ID:       nextID,
			Source:   src,
			Link:     l,
			Match:    ipnet.Interval{Lo: lo, Hi: lo + 1 + uint64(rng.Intn(1<<10))},
			Priority: core.Priority(rng.Intn(8)),
		}
		if rng.Intn(8) == 0 { // occasional explicit drop rule
			r.Link = netgraph.NoLink
		}
		nextID++
		return r
	}

	var d core.Delta
	for step := 0; step < 250; step++ {
		switch {
		case step%10 == 9: // atomic batch of inserts and removals
			var ops []core.BatchOp
			removed := map[core.RuleID]bool{}
			for k := 0; k < 1+rng.Intn(5); k++ {
				if len(live) > 0 && rng.Intn(2) == 0 {
					id := live[rng.Intn(len(live))]
					if removed[id] {
						continue
					}
					removed[id] = true
					ops = append(ops, core.RemoveOp(id))
				} else {
					r := randomRule()
					live = append(live, r.ID)
					ops = append(ops, core.InsertOp(r))
				}
			}
			if err := n.ApplyBatch(ops, &d, 0); err != nil {
				t.Fatal(err)
			}
			var kept []core.RuleID
			for _, id := range live {
				if !removed[id] {
					kept = append(kept, id)
				}
			}
			live = kept
			m.Apply(&d)
			verify(step, "batch")
		case len(live) > 0 && rng.Intn(5) < 2: // removal
			i := rng.Intn(len(live))
			id := live[i]
			live = append(live[:i], live[i+1:]...)
			if err := n.RemoveRuleInto(id, &d); err != nil {
				t.Fatal(err)
			}
			m.Apply(&d)
			verify(step, "remove")
		default: // insertion, via the caller-ran-the-loop-check path the
			// Checker and server use
			r := randomRule()
			live = append(live, r.ID)
			if err := n.InsertRuleInto(r, &d); err != nil {
				t.Fatal(err)
			}
			m.ApplyWithLoops(&d, check.FindLoopsDelta(n, &d), true)
			verify(step, "insert")
		}
	}

	// The workload must have exercised the incremental machinery, not just
	// re-evaluated everything every time.
	st := m.Stats()
	if st.Skips == 0 {
		t.Fatalf("stats %+v: dependency tracking never skipped anything", st)
	}
	if st.Events == 0 {
		t.Fatalf("stats %+v: churn produced no verdict transitions", st)
	}

	// RecheckAll agrees with the incrementally maintained verdicts.
	if ev := m.RecheckAll(); len(ev) != 0 {
		t.Fatalf("RecheckAll found stale verdicts: %v", ev)
	}
}

// TestConcurrentSubscribersAndQueries exercises the monitor's lock
// discipline under -race: updates stream while subscribers drain and
// other goroutines query.
func TestConcurrentSubscribersAndQueries(t *testing.T) {
	g, nodes, links := line4()
	n := core.NewNetwork(g, core.Options{})
	m := New(n, 0)
	id, _ := m.Register(Reachable{From: nodes[0], To: nodes[1]})
	m.Register(LoopFree{})

	sub := m.Subscribe(16)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range sub.C {
		}
	}()
	queries := make(chan struct{})
	go func() {
		defer close(queries)
		for i := 0; i < 200; i++ {
			m.Status(id)
			m.Stats()
			m.NumRegistered()
		}
	}()

	for i := 0; i < 100; i++ {
		mustInsert(t, n, m, core.Rule{ID: core.RuleID(i + 1), Source: nodes[0], Link: links[0],
			Match: ipnet.Interval{Lo: 0, Hi: 10}, Priority: 1})
		mustRemove(t, n, m, core.RuleID(i+1))
	}
	<-queries
	sub.Cancel()
	<-drained
}

// TestRegisterRefcount: registering an identical spec returns the same id
// with a reference added; the registration survives until the last
// Unregister releases it.
func TestRegisterRefcount(t *testing.T) {
	g, nodes, links := line4()
	n := core.NewNetwork(g, core.Options{})
	m := New(n, 0)
	id1, _ := m.Register(Reachable{From: nodes[0], To: nodes[1]})
	id2, _ := m.Register(Reachable{From: nodes[0], To: nodes[1]})
	if id1 != id2 {
		t.Fatalf("duplicate spec got distinct ids %d, %d", id1, id2)
	}
	if got := m.NumRegistered(); got != 1 {
		t.Fatalf("NumRegistered = %d, want 1 (deduped)", got)
	}
	other, _ := m.Register(Reachable{From: nodes[1], To: nodes[2]})
	if other == id1 {
		t.Fatal("distinct spec shared an id")
	}
	if !m.Unregister(id1) {
		t.Fatal("first unregister failed")
	}
	// One reference remains: still registered, still evaluated.
	if _, _, ok := m.Status(id1); !ok {
		t.Fatal("refcounted invariant vanished after one unregister")
	}
	if ev := mustInsert(t, n, m, core.Rule{ID: 1, Source: nodes[0], Link: links[0],
		Match: ipnet.Interval{Lo: 0, Hi: 10}, Priority: 1}); len(ev) != 1 {
		t.Fatalf("refcounted invariant not evaluated: %v", ev)
	}
	if !m.Unregister(id1) {
		t.Fatal("second unregister failed")
	}
	if _, _, ok := m.Status(id1); ok {
		t.Fatal("invariant survived final unregister")
	}
	if m.Unregister(id1) {
		t.Fatal("triple unregister succeeded")
	}
	// Re-registering now allocates a fresh id (ids are never reused).
	id3, _ := m.Register(Reachable{From: nodes[0], To: nodes[1]})
	if id3 == id1 {
		t.Fatalf("id %d reused after final unregister", id3)
	}
}

// TestBlackHoleFreeSinksNotConflated: BlackHoleFree registrations with
// different sink sets are distinct invariants (the wire String form hides
// the sinks, the dedup key must not).
func TestBlackHoleFreeSinksNotConflated(t *testing.T) {
	g, nodes, _ := line4()
	n := core.NewNetwork(g, core.Options{})
	m := New(n, 0)
	a, _ := m.Register(BlackHoleFree{})
	b, _ := m.Register(BlackHoleFree{Sinks: map[netgraph.NodeID]bool{nodes[3]: true}})
	if a == b {
		t.Fatal("different sink sets conflated")
	}
	c, _ := m.Register(BlackHoleFree{Sinks: map[netgraph.NodeID]bool{nodes[3]: true}})
	if b != c {
		t.Fatal("identical sink sets not deduped")
	}
}

// TestIndexBornDirtyLinks: a link added after an invariant's last
// evaluation must conservatively dirty it — the index seeds new links
// with every dep-tracked invariant, and a precise re-evaluation then
// clears the seeds it does not confirm.
func TestIndexBornDirtyLinks(t *testing.T) {
	g := netgraph.New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	la := g.AddLink(a, b)
	n := core.NewNetwork(g, core.Options{})
	m := New(n, 0)
	id, st := m.Register(Reachable{From: a, To: c})
	if st != Violated {
		t.Fatalf("initial status: %v", st)
	}

	// A new link b->c appears, then a rule on it plus the a->b hop: the
	// first update touches only the born-after link, and must still dirty
	// the invariant.
	lb := g.AddLink(b, c)
	mustInsert(t, n, m, core.Rule{ID: 1, Source: a, Link: la,
		Match: ipnet.Interval{Lo: 0, Hi: 10}, Priority: 1})
	ev := mustInsert(t, n, m, core.Rule{ID: 2, Source: b, Link: lb,
		Match: ipnet.Interval{Lo: 0, Hi: 10}, Priority: 1})
	if len(ev) != 1 || ev[0].ID != id || ev[0].Kind != Cleared {
		t.Fatalf("born-dirty link missed: %v", ev)
	}

	// After the re-evaluation the seeds are precise again: a rule on a
	// link out of a node unreachable from a must be skipped (the fixpoint
	// from a never examines d's out-links).
	d := g.AddNode("d")
	ld := g.AddLink(d, c)
	before := m.Stats()
	mustInsert(t, n, m, core.Rule{ID: 3, Source: d, Link: ld,
		Match: ipnet.Interval{Lo: 0, Hi: 10}, Priority: 1})
	// The new link dirties once (born dirty), and the re-evaluation drops
	// it from the dependency set...
	mid := m.Stats()
	if mid.Evaluations != before.Evaluations+1 {
		t.Fatalf("born-dirty evaluation missing: %+v -> %+v", before, mid)
	}
	// ...so further churn on it is skipped.
	mustInsert(t, n, m, core.Rule{ID: 4, Source: d, Link: ld,
		Match: ipnet.Interval{Lo: 20, Hi: 30}, Priority: 1})
	after := m.Stats()
	if after.Evaluations != mid.Evaluations || after.Skips != mid.Skips+1 {
		t.Fatalf("unrelated new link not skipped after re-evaluation: %+v -> %+v", mid, after)
	}
}

// TestConcurrentRegistrationChurn emulates the server's lock discipline
// under -race: a writer mutates the data plane and applies deltas under a
// write lock while reader goroutines register, query, and unregister
// (including deliberate dedup collisions) under read locks.
func TestConcurrentRegistrationChurn(t *testing.T) {
	g, nodes, links := line4()
	n := core.NewNetwork(g, core.Options{})
	m := New(n, 0)
	m.Register(Reachable{From: nodes[0], To: nodes[3]})

	var lk sync.RWMutex
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				lk.RLock()
				// Half the goroutines fight over the same spec (dedup
				// path), half register distinct ones.
				var s Spec
				if w%2 == 0 {
					s = Waypoint{From: nodes[0], To: nodes[2], Via: nodes[1]}
				} else {
					s = Reachable{From: nodes[w%4], To: nodes[(w+i)%4]}
				}
				id, _ := m.Register(s)
				m.Status(id)
				m.Invariants()
				m.Unregister(id)
				lk.RUnlock()
			}
		}()
	}
	for i := 0; i < 100; i++ {
		lk.Lock()
		var d core.Delta
		if err := n.InsertRuleInto(core.Rule{ID: core.RuleID(i + 10), Source: nodes[i%3], Link: links[i%3],
			Match: ipnet.Interval{Lo: 0, Hi: 50}, Priority: core.Priority(i % 5)}, &d); err != nil {
			t.Error(err)
			lk.Unlock()
			break
		}
		m.Apply(&d)
		if i%2 == 1 {
			if err := n.RemoveRuleInto(core.RuleID(i+10), &d); err != nil {
				t.Error(err)
				lk.Unlock()
				break
			}
			m.Apply(&d)
		}
		lk.Unlock()
	}
	wg.Wait()
	if ev := m.RecheckAll(); len(ev) != 0 {
		t.Fatalf("stale verdicts after concurrent churn: %v", ev)
	}
}

// TestShardedEquivalence10K is the scale ground-truth test for the
// sharded index, the atom-granular refinement, and burst mode: four
// monitors over one data plane — the default atom-granular index, the
// link-granular index (SetLinkGranular), the pre-sharding flat scan, and
// a bursting monitor — consume an identical randomized churn stream at
// 10⁴ standing reachability invariants, and every cached verdict must
// equal a from-scratch fixpoint oracle. The link-granular and flat
// monitors must also agree exactly on what they evaluated (the index is
// a data structure swap, not a semantics change), while the atom-granular
// monitor may only evaluate a subset of that, with the difference
// accounted for by its range-skip counter.
func TestShardedEquivalence10K(t *testing.T) {
	const numNodes, numInv = 128, 10_000
	rng := rand.New(rand.NewSource(7))

	g := netgraph.New()
	nodes := make([]netgraph.NodeID, numNodes)
	for i := range nodes {
		nodes[i] = g.AddNode(fmt.Sprintf("n%d", i))
	}
	var links []netgraph.LinkID
	for i := range nodes { // ring + chords: cycles, fan-in, fan-out
		links = append(links, g.AddLink(nodes[i], nodes[(i+1)%numNodes]))
		if i%3 == 0 {
			links = append(links, g.AddLink(nodes[i], nodes[(i+numNodes/2)%numNodes]))
		}
	}
	n := core.NewNetwork(g, core.Options{})

	sharded := New(n, 0)
	linkgran := New(n, 0)
	linkgran.SetLinkGranular(true)
	flat := New(n, 0)
	flat.SetFlatScan(true)
	burst := New(n, 0)
	burst.SetBurst(BurstConfig{MaxDeltas: 7})

	// Register the same 10⁴ pairs, diagonal by diagonal, on all four.
	type pair struct{ from, to netgraph.NodeID }
	var pairs []pair
	ids := make([][4]ID, 0, numInv)
	for d := 1; len(pairs) < numInv; d++ {
		for i := 0; i < numNodes && len(pairs) < numInv; i++ {
			p := pair{nodes[i], nodes[(i+d)%numNodes]}
			pairs = append(pairs, p)
			s := Reachable{From: p.from, To: p.to}
			i1, _ := sharded.Register(s)
			i1b, _ := linkgran.Register(s)
			i2, _ := flat.Register(s)
			i3, _ := burst.Register(s)
			ids = append(ids, [4]ID{i1, i1b, i2, i3})
		}
	}

	// Oracle: one single-source fixpoint per distinct source answers all
	// its pairs.
	verify := func(step int, monitors map[string]*Monitor) {
		t.Helper()
		reach := map[netgraph.NodeID][]*bitset.Set{}
		for i, p := range pairs {
			r, ok := reach[p.from]
			if !ok {
				r = check.ReachFrom(n, p.from, nil)
				reach[p.from] = r
			}
			want := Holds
			if int(p.to) >= len(r) || r[p.to] == nil || r[p.to].Empty() {
				want = Violated
			}
			for which, m := range monitors {
				idx := 0
				switch which {
				case "linkgran":
					idx = 1
				case "flat":
					idx = 2
				case "burst":
					idx = 3
				}
				got, _, ok := m.Status(ids[i][idx])
				if !ok {
					t.Fatalf("step %d: %s lost invariant %d", step, which, ids[i][idx])
				}
				if got != want {
					t.Fatalf("step %d: %s disagrees with oracle on %v->%v: got %v want %v",
						step, which, p.from, p.to, got, want)
				}
			}
		}
	}

	var live []core.RuleID
	nextID := core.RuleID(1)
	var d core.Delta
	apply := func() {
		sharded.Apply(&d)
		linkgran.Apply(&d)
		flat.Apply(&d)
		burst.Apply(&d)
	}
	const steps = 160
	for step := 0; step < steps; step++ {
		if len(live) > 4 && rng.Intn(3) == 0 {
			i := rng.Intn(len(live))
			id := live[i]
			live = append(live[:i], live[i+1:]...)
			if err := n.RemoveRuleInto(id, &d); err != nil {
				t.Fatal(err)
			}
		} else {
			l := links[rng.Intn(len(links))]
			lo := uint64(rng.Intn(1 << 10))
			r := core.Rule{
				ID: nextID, Source: g.Link(l).Src, Link: l,
				Match:    ipnet.Interval{Lo: lo, Hi: lo + 1 + uint64(rng.Intn(1<<8))},
				Priority: core.Priority(rng.Intn(4)),
			}
			nextID++
			live = append(live, r.ID)
			if err := n.InsertRuleInto(r, &d); err != nil {
				t.Fatal(err)
			}
		}
		apply()
		if step%40 == 39 {
			// Mid-run spot check for the eagerly evaluated monitors (the
			// bursting one is only comparable at a flush boundary).
			verify(step, map[string]*Monitor{"sharded": sharded, "linkgran": linkgran, "flat": flat})
		}
	}
	burst.Flush()
	verify(steps, map[string]*Monitor{"sharded": sharded, "linkgran": linkgran, "flat": flat, "burst": burst})

	// The link-granular index must reproduce the flat scan's dirty sets
	// exactly: no topology growth happened mid-churn, so the conservative
	// rules coincide and the evaluation counts must match. The
	// atom-granular default may only evaluate a subset of that, and its
	// range-skip counter must account for every invariant it left alone
	// that link granularity would have re-evaluated.
	ss, ls, fs, bs := sharded.Stats(), linkgran.Stats(), flat.Stats(), burst.Stats()
	if ls.Evaluations != fs.Evaluations {
		t.Fatalf("link-granular evaluated %d, flat %d — dirty sets diverged", ls.Evaluations, fs.Evaluations)
	}
	if ss.Evaluations > ls.Evaluations {
		t.Fatalf("atom-granular evaluated %d, more than link-granular's %d", ss.Evaluations, ls.Evaluations)
	}
	if ss.Evaluations+ss.RangeSkips != ls.Evaluations {
		t.Fatalf("atom-granular evals %d + range-skips %d != link-granular evals %d",
			ss.Evaluations, ss.RangeSkips, ls.Evaluations)
	}
	if ss.Skips == 0 || ss.Evaluations == 0 {
		t.Fatalf("stats %+v: churn exercised nothing", ss)
	}
	// Bursting must have coalesced (fewer passes) yet not missed updates.
	if bs.Coalesced != ss.Updates {
		t.Fatalf("burst coalesced %d of %d updates", bs.Coalesced, ss.Updates)
	}
	if bs.Evaluations >= ss.Evaluations {
		t.Fatalf("bursting did not reduce evaluations: %d vs %d", bs.Evaluations, ss.Evaluations)
	}
	// And the incrementally maintained verdicts survive an audit.
	if ev := sharded.RecheckAll(); len(ev) != 0 {
		t.Fatalf("RecheckAll found stale sharded verdicts: %v", ev)
	}
	if ev := burst.RecheckAll(); len(ev) != 0 {
		t.Fatalf("RecheckAll found stale burst verdicts: %v", ev)
	}
}
