package metrics

import (
	"bufio"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of finite histogram buckets. Bounds are
// geometric: 1µs·2⁰ … 1µs·2²⁵ (≈33.6s), which spans everything from a
// single-link dirty check to a full 10⁵-invariant recheck. One shared
// bucket layout keeps every histogram's storage a fixed pointer-free
// array and makes cross-stage comparisons line up bucket-for-bucket.
const NumBuckets = 26

// bucketBoundNs returns the upper bound (inclusive, per Prometheus `le`
// semantics) of finite bucket i, in nanoseconds.
func bucketBoundNs(i int) int64 {
	return 1000 << uint(i)
}

// histCounts is the histogram hot-path storage: cumulative-rendered
// bucket counts (index NumBuckets is +Inf), total observed nanoseconds,
// and observation count. It must stay free of pointers at any depth so
// histograms add no GC scan work (atomic.Uint64/Int64 wrap a bare word).
//
//deltanet:pointerfree
type histCounts struct {
	buckets [NumBuckets + 1]atomic.Uint64
	sumNs   atomic.Int64
	count   atomic.Uint64
}

// Histogram is a fixed-bucket latency histogram. Observe is lock-free
// and allocation-free. The zero value is ready to use (HistogramVec
// relies on that); standalone histograms are created via
// Registry.Histogram.
type Histogram struct {
	c histCounts
}

// bucketIndex returns the finite bucket for ns, or NumBuckets for
// overflow. An observation equal to a bound lands in that bound's
// bucket (`le` is inclusive).
func bucketIndex(ns int64) int {
	for i := 0; i < NumBuckets; i++ {
		if ns <= bucketBoundNs(i) {
			return i
		}
	}
	return NumBuckets
}

// ObserveNs records a duration in nanoseconds. Negative values clamp
// to zero (monotonic-clock paranoia, not an expected input).
func (h *Histogram) ObserveNs(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.c.buckets[bucketIndex(ns)].Add(1)
	h.c.sumNs.Add(ns)
	h.c.count.Add(1)
}

// Observe records a duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNs(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.c.count.Load() }

// SumNs returns the total observed nanoseconds.
func (h *Histogram) SumNs() int64 { return h.c.sumNs.Load() }

// renderLabelled writes the _bucket/_sum/_count sample lines.
// extraLabel is either empty or a pre-rendered `name="value"` pair to
// splice before le. Counts are read once into a snapshot so the
// cumulative series is internally non-decreasing even under concurrent
// observes (sum/count may trail or lead slightly; scrapes tolerate it).
func (h *Histogram) renderLabelled(w *bufio.Writer, name, extraLabel string) {
	var snap [NumBuckets + 1]uint64
	for i := range snap {
		snap[i] = h.c.buckets[i].Load()
	}
	sep := ""
	if extraLabel != "" {
		sep = ","
	}
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		cum += snap[i]
		le := strconv.FormatFloat(float64(bucketBoundNs(i))/1e9, 'g', -1, 64)
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, extraLabel, sep, le, cum)
	}
	cum += snap[NumBuckets]
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, extraLabel, sep, cum)
	if extraLabel == "" {
		fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(float64(h.c.sumNs.Load())/1e9))
		fmt.Fprintf(w, "%s_count %d\n", name, cum)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %s\n", name, extraLabel, formatFloat(float64(h.c.sumNs.Load())/1e9))
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, extraLabel, cum)
	}
}
