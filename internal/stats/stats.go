// Package stats provides the measurement machinery for the experiment
// harness: per-operation latency collection with medians, means,
// percentile thresholds and CDF series (Table 3 and Figure 8), and heap
// probes for the memory comparison (Appendix D / Table 5).
package stats

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Latencies collects per-operation durations.
type Latencies struct {
	samples []time.Duration
	sorted  bool
}

// NewLatencies returns a collector preallocated for n samples.
func NewLatencies(n int) *Latencies {
	return &Latencies{samples: make([]time.Duration, 0, n)}
}

// Add records one sample.
func (l *Latencies) Add(d time.Duration) {
	l.samples = append(l.samples, d)
	l.sorted = false
}

// Len returns the number of samples.
func (l *Latencies) Len() int { return len(l.samples) }

func (l *Latencies) sort() {
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
}

// Median returns the 50th percentile.
func (l *Latencies) Median() time.Duration { return l.Percentile(50) }

// Percentile returns the p-th percentile (0 < p <= 100) by
// nearest-rank.
func (l *Latencies) Percentile(p float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	l.sort()
	rank := int(math.Ceil(p/100*float64(len(l.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(l.samples) {
		rank = len(l.samples) - 1
	}
	return l.samples[rank]
}

// Mean returns the arithmetic mean.
func (l *Latencies) Mean() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range l.samples {
		sum += s
	}
	return sum / time.Duration(len(l.samples))
}

// Max returns the largest sample.
func (l *Latencies) Max() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	l.sort()
	return l.samples[len(l.samples)-1]
}

// FractionBelow returns the fraction of samples strictly below the
// threshold — Table 3's "Percentage < 250µs" row.
func (l *Latencies) FractionBelow(threshold time.Duration) float64 {
	if len(l.samples) == 0 {
		return 0
	}
	l.sort()
	// First index >= threshold.
	i := sort.Search(len(l.samples), func(i int) bool { return l.samples[i] >= threshold })
	return float64(i) / float64(len(l.samples))
}

// CDFPoint is one point of a cumulative distribution: the fraction of
// samples <= the upper bound of the bucket.
type CDFPoint struct {
	Upper    time.Duration
	Fraction float64
}

// CDF returns the cumulative distribution over log-spaced buckets from
// 1µs to 10^decades µs with pointsPerDecade points per decade — the series
// plotted in Figure 8.
func (l *Latencies) CDF(decades, pointsPerDecade int) []CDFPoint {
	if len(l.samples) == 0 {
		return nil
	}
	l.sort()
	var out []CDFPoint
	for d := 0; d < decades; d++ {
		for p := 0; p < pointsPerDecade; p++ {
			exp := float64(d) + float64(p)/float64(pointsPerDecade)
			upper := time.Duration(math.Pow(10, exp) * float64(time.Microsecond))
			i := sort.Search(len(l.samples), func(i int) bool { return l.samples[i] > upper })
			out = append(out, CDFPoint{Upper: upper, Fraction: float64(i) / float64(len(l.samples))})
		}
	}
	// Final point at the top of the last decade.
	upper := time.Duration(math.Pow(10, float64(decades)) * float64(time.Microsecond))
	i := sort.Search(len(l.samples), func(i int) bool { return l.samples[i] > upper })
	out = append(out, CDFPoint{Upper: upper, Fraction: float64(i) / float64(len(l.samples))})
	return out
}

// FormatCDF renders a CDF as a two-column table ("us fraction") for
// gnuplot-style consumption.
func FormatCDF(points []CDFPoint) string {
	var b strings.Builder
	b.WriteString("# microseconds cdf\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%.3f %.6f\n", float64(p.Upper)/float64(time.Microsecond), p.Fraction)
	}
	return b.String()
}

// HeapInUse reports live heap bytes after a forced GC — the probe used to
// compare engine footprints (Appendix D).
func HeapInUse() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// MemDelta runs build and returns the heap growth it caused. The result is
// approximate (Go's GC may retain slack) but stable enough for the 5–7×
// ratio comparisons the paper reports.
func MemDelta(build func()) uint64 {
	before := HeapInUse()
	build()
	after := HeapInUse()
	if after < before {
		return 0
	}
	return after - before
}

// Timer measures one operation with monotonic time.
type Timer struct{ start time.Time }

// StartTimer begins timing.
func StartTimer() Timer { return Timer{start: time.Now()} }

// Elapsed returns the time since StartTimer.
func (t Timer) Elapsed() time.Duration { return time.Since(t.start) }

// FormatMicros renders a duration as microseconds with a µs suffix, the
// unit of the paper's tables.
func FormatMicros(d time.Duration) string {
	return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
}
