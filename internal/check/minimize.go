package check

// Minimal packet equivalence classes — the comparison point with Yang and
// Lam's atomic predicates verifier the paper draws in §5: "Our algorithm,
// however, does not find the unique minimal number of packet equivalence
// classes, cf. [55]."
//
// Delta-net's atoms over-approximate the minimal partition: two atoms may
// exhibit identical forwarding behaviour on every link of the network (for
// instance when a rule that once separated them was removed, or when
// several rules happen to align). The minimal partition groups atoms by
// their network-wide behaviour vector — the set of links carrying them —
// which is exactly what Yang & Lam's atomic predicates compute. Comparing
// len(atoms) with MinimalECs quantifies the compactness Delta-net trades
// for its quasi-linear updates.

import (
	"sort"

	"deltanet/internal/core"
	"deltanet/internal/intervalmap"
	"deltanet/internal/ipnet"
)

// intervalmapAtomIDOf converts a bitset element back to an atom id.
func intervalmapAtomIDOf(a int) intervalmap.AtomID { return intervalmap.AtomID(a) }

// ECClass is one minimal equivalence class: atoms with identical
// network-wide forwarding behaviour.
type ECClass struct {
	Atoms []intervalmap.AtomID
	Links []int32 // sorted link ids carrying these atoms (behaviour signature)
}

// MinimalECs partitions the current atoms into minimal packet equivalence
// classes and returns them, largest first. Atoms carried by no link are
// grouped into a single "unused" class if present.
func MinimalECs(n *core.Network) []ECClass {
	g := n.Graph()
	// behaviour[atom] = sorted list of links carrying it.
	behaviour := make(map[intervalmap.AtomID][]int32)
	present := map[intervalmap.AtomID]bool{}
	for _, l := range g.Links() {
		n.Label(l.ID).ForEach(func(a int) bool {
			id := intervalmapAtomIDOf(a)
			behaviour[id] = append(behaviour[id], int32(l.ID))
			present[id] = true
			return true
		})
	}
	// Group by signature.
	classes := map[string]*ECClass{}
	addTo := func(key string, id intervalmap.AtomID, links []int32) {
		c, ok := classes[key]
		if !ok {
			c = &ECClass{Links: links}
			classes[key] = c
		}
		c.Atoms = append(c.Atoms, id)
	}
	for id, links := range behaviour {
		sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
		key := signature(links)
		addTo(key, id, links)
	}
	// Atoms not on any link share the trivial behaviour.
	var unused []intervalmap.AtomID
	n.ForEachAtom(func(id intervalmap.AtomID, _ ipnet.Interval) bool {
		if !present[id] {
			unused = append(unused, id)
		}
		return true
	})
	var out []ECClass
	for _, c := range classes {
		sort.Slice(c.Atoms, func(i, j int) bool { return c.Atoms[i] < c.Atoms[j] })
		out = append(out, *c)
	}
	if len(unused) > 0 {
		out = append(out, ECClass{Atoms: unused})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Atoms) != len(out[j].Atoms) {
			return len(out[i].Atoms) > len(out[j].Atoms)
		}
		return out[i].Atoms[0] < out[j].Atoms[0]
	})
	return out
}

func signature(links []int32) string {
	b := make([]byte, 0, len(links)*4)
	for _, l := range links {
		b = append(b, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
	}
	return string(b)
}

// CompressionRatio reports atoms / minimal classes: how far Delta-net's
// partition is from Yang & Lam's unique minimal one (1.0 = already
// minimal).
func CompressionRatio(n *core.Network) float64 {
	m := len(MinimalECs(n))
	if m == 0 {
		return 1
	}
	return float64(n.NumAtoms()) / float64(m)
}
