// Package integration ties the full pipeline together: dataset generation
// → trace serialization → replay through both engines → cross-engine
// behavioural agreement and invariant checks. These are the end-to-end
// guarantees a user of the repository relies on.
package integration

import (
	"bytes"
	"math/rand"
	"testing"

	"deltanet/internal/check"
	"deltanet/internal/core"
	"deltanet/internal/datasets"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
	"deltanet/internal/trace"
	"deltanet/internal/veriflow"
)

// TestTraceFileRoundTripAllDatasets generates each dataset, serializes it
// to the text format, reads it back, and verifies the replayed behaviour
// is identical to replaying the in-memory trace.
func TestTraceFileRoundTripAllDatasets(t *testing.T) {
	for _, name := range datasets.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			orig, err := datasets.Build(name, 0.02)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := orig.Write(&buf); err != nil {
				t.Fatal(err)
			}
			parsed, err := trace.Read(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if len(parsed.Ops) != len(orig.Ops) {
				t.Fatalf("ops %d != %d", len(parsed.Ops), len(orig.Ops))
			}
			nA := replay(t, orig)
			nB := replay(t, parsed)
			if nA.BehaviourDigest() != nB.BehaviourDigest() {
				t.Fatal("behaviour differs after file round trip")
			}
		})
	}
}

func replay(t *testing.T, tr *trace.Trace) *core.Network {
	t.Helper()
	n := core.NewNetwork(tr.Graph, core.Options{})
	var d core.Delta
	for i, op := range tr.Ops {
		if err := trace.Apply(n, op, &d); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	return n
}

// TestEnginesAgreeOnDatasets replays dataset insertions through Delta-net
// and Veriflow-RI and compares forwarding behaviour at sampled addresses
// on every switch, plus what-if loop verdicts per link.
func TestEnginesAgreeOnDatasets(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, name := range []string{"airtel1", "4switch", "berkeley"} {
		name := name
		t.Run(name, func(t *testing.T) {
			tr, err := datasets.Build(name, 0.02)
			if err != nil {
				t.Fatal(err)
			}
			dn := core.NewNetwork(tr.Graph, core.Options{})
			vf := veriflow.NewEngine(tr.Graph)
			var d core.Delta
			for _, op := range tr.Ops {
				if !op.Insert {
					continue
				}
				if err := trace.Apply(dn, op, &d); err != nil {
					t.Fatal(err)
				}
				p, ok := ipnet.PrefixFromInterval(ipnet.IPv4, op.Rule.Match)
				if !ok {
					t.Fatalf("non-prefix rule %v", op.Rule)
				}
				if _, err := vf.InsertRule(veriflow.Rule{ID: op.Rule.ID, Source: op.Rule.Source,
					Link: op.Rule.Link, Prefix: p, Priority: op.Rule.Priority}); err != nil {
					t.Fatal(err)
				}
			}
			// Sampled forwarding agreement.
			g := tr.Graph
			for probe := 0; probe < 200; probe++ {
				addr := uint64(rng.Intn(1 << 32))
				fg := vf.ForwardingGraph(ipnet.Interval{Lo: addr, Hi: addr + 1})
				atom := dn.AtomOf(addr)
				for v := netgraph.NodeID(0); int(v) < g.NumNodes(); v++ {
					want, ok := fg[v]
					got := dn.ForwardLink(v, atom)
					if !ok {
						if got != netgraph.NoLink && !g.IsDropLink(got) {
							t.Fatalf("addr %d node %d: delta-net %d, veriflow none", addr, v, got)
						}
					} else if got != want {
						t.Fatalf("addr %d node %d: delta-net %d veriflow %d", addr, v, got, want)
					}
				}
			}
			// Loop verdict agreement: the converged data plane.
			dnLoops := len(check.FindLoopsAll(dn)) > 0
			vfLoops := false
			for _, l := range g.Links() {
				if res := vf.WhatIfLinkFailure(l.ID, true); len(res.Loops) > 0 {
					vfLoops = true
					break
				}
			}
			if dnLoops != vfLoops {
				t.Fatalf("loop verdicts differ: delta-net=%v veriflow=%v", dnLoops, vfLoops)
			}
		})
	}
}

// TestGCBehaviourPreserved replays a full dataset (inserts AND removals)
// with and without atom GC and verifies identical behaviour digests at
// the end and at intermediate checkpoints.
func TestGCBehaviourPreserved(t *testing.T) {
	tr, err := datasets.Build("rf1755", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	plain := core.NewNetwork(tr.Graph, core.Options{})
	gc := core.NewNetwork(tr.Graph, core.Options{GC: true})
	var d core.Delta
	for i, op := range tr.Ops {
		if err := trace.Apply(plain, op, &d); err != nil {
			t.Fatal(err)
		}
		if err := trace.Apply(gc, op, &d); err != nil {
			t.Fatal(err)
		}
		if i%1000 == 0 && !core.BehaviourEqual(plain, gc) {
			t.Fatalf("op %d: GC changed behaviour", i)
		}
	}
	if !core.BehaviourEqual(plain, gc) {
		t.Fatal("final behaviour differs under GC")
	}
	if gc.NumAtoms() != 1 {
		t.Fatalf("GC left %d atoms after full removal", gc.NumAtoms())
	}
	if plain.NumAtoms() == 1 {
		t.Fatal("non-GC engine unexpectedly compacted")
	}
}

// TestSoakRandomChurn is a longer randomized differential soak across
// both engines and the GC/no-GC variants. Skipped with -short.
func TestSoakRandomChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(2024))
	g := netgraph.New()
	var nodes []netgraph.NodeID
	for i := 0; i < 8; i++ {
		nodes = append(nodes, g.AddNode(string(rune('a'+i))))
	}
	var links []netgraph.LinkID
	for i := range nodes {
		for j := range nodes {
			if i != j && rng.Intn(2) == 0 {
				links = append(links, g.AddLink(nodes[i], nodes[j]))
			}
		}
	}
	dn := core.NewNetwork(g, core.Options{})
	dnGC := core.NewNetwork(g, core.Options{GC: true})
	var live []core.RuleID
	nextID := core.RuleID(1)
	var d core.Delta
	for op := 0; op < 20000; op++ {
		if len(live) == 0 || rng.Intn(100) < 55 {
			l := links[rng.Intn(len(links))]
			length := 4 + rng.Intn(24)
			p := ipnet.NewPrefix(uint64(rng.Intn(1<<30))<<2, length)
			r := core.Rule{ID: nextID, Source: g.Link(l).Src, Link: l,
				Match: p.Interval(), Priority: core.Priority(rng.Intn(1 << 10))}
			nextID++
			if err := dn.InsertRuleInto(r, &d); err != nil {
				t.Fatal(err)
			}
			if err := dnGC.InsertRuleInto(r, &d); err != nil {
				t.Fatal(err)
			}
			live = append(live, r.ID)
		} else {
			k := rng.Intn(len(live))
			id := live[k]
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			if err := dn.RemoveRuleInto(id, &d); err != nil {
				t.Fatal(err)
			}
			if err := dnGC.RemoveRuleInto(id, &d); err != nil {
				t.Fatal(err)
			}
		}
		if op%4000 == 0 {
			if msg := dn.CheckInvariants(); msg != "" {
				t.Fatalf("op %d: %s", op, msg)
			}
			if msg := dnGC.CheckInvariants(); msg != "" {
				t.Fatalf("op %d (gc): %s", op, msg)
			}
			if !core.BehaviourEqual(dn, dnGC) {
				t.Fatalf("op %d: behaviour divergence", op)
			}
		}
	}
	if dnGC.NumAtoms() > dn.NumAtoms() {
		t.Fatal("GC engine has more atoms than plain engine")
	}
	t.Logf("soak done: %d live rules, atoms plain=%d gc=%d merges=%d",
		dn.NumRules(), dn.NumAtoms(), dnGC.NumAtoms(), dnGC.Merges())
}
