package intervalmap

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"deltanet/internal/ipnet"
)

// diffCompare asserts every observable of the arena-backed Map matches
// the rbtree oracle: bounds, per-bound atom ids, counters, allocation
// stamps, and both structures' internal invariants. Split-pair and
// release results are compared at the call sites.
func diffCompare(t testing.TB, m *Map, o *oracleMap) {
	t.Helper()
	if m.NumAtoms() != o.NumAtoms() {
		t.Fatalf("NumAtoms: arena %d, oracle %d", m.NumAtoms(), o.NumAtoms())
	}
	if m.MaxID() != o.MaxID() {
		t.Fatalf("MaxID: arena %d, oracle %d", m.MaxID(), o.MaxID())
	}
	if m.AllocSeq() != o.AllocSeq() {
		t.Fatalf("AllocSeq: arena %d, oracle %d", m.AllocSeq(), o.AllocSeq())
	}
	mb, ob := m.Bounds(), o.Bounds()
	if len(mb) != len(ob) {
		t.Fatalf("bounds count: arena %d, oracle %d", len(mb), len(ob))
	}
	ov := o.Values()
	for i, b := range mb {
		if b != ob[i] {
			t.Fatalf("bound %d: arena %#x, oracle %#x", i, b, ob[i])
		}
		if b < m.Space().Max() {
			if got := m.AtomOf(b); got != ov[i] {
				t.Fatalf("atom at bound %#x: arena %d, oracle %d", b, got, ov[i])
			}
		}
	}
	for id := AtomID(0); int(id) < m.MaxID(); id++ {
		if m.BornSeq(id) != o.BornSeq(id) {
			t.Fatalf("BornSeq(%d): arena %d, oracle %d", id, m.BornSeq(id), o.BornSeq(id))
		}
	}
	if msg := m.CheckInvariants(); msg != "" {
		t.Fatalf("arena invariants: %s", msg)
	}
	if msg := o.tree.CheckInvariants(); msg != "" {
		t.Fatalf("oracle invariants: %s", msg)
	}
}

// runDifferential interprets data as an operation script and drives the
// arena map and the oracle in lockstep. Byte 0 is a flag byte (bit 0:
// garbage collection enabled — whether release ops run at all); each
// subsequent 5-byte chunk is one operation:
//
//	chunk[0]&3 ∈ {0,1}: CreateAtoms over an interval built from two
//	  16-bit bounds (little-endian chunk[1:3], chunk[3:5]) — the small
//	  key space forces bound collisions, re-splits of recycled ids, and
//	  duplicate inserts;
//	chunk[0]&3 == 2: ReleaseBound of the k-th current bound (k from
//	  chunk[1:3]) — real merges that push ids onto the free list, so
//	  later creates exercise LIFO id recycling;
//	chunk[0]&3 == 3: full-state comparison checkpoint.
//
// A final comparison always runs, so any divergence in atoms, splits,
// stamps, or structure is caught no matter how the script ends.
func runDifferential(t testing.TB, data []byte) {
	if len(data) == 0 {
		return
	}
	gc := data[0]&1 == 1
	data = data[1:]

	m := New(ipnet.IPv4)
	o := newOracle(ipnet.IPv4)
	for len(data) >= 5 {
		chunk := data[:5]
		data = data[5:]
		switch chunk[0] & 3 {
		case 0, 1:
			a := uint64(binary.LittleEndian.Uint16(chunk[1:3]))
			b := uint64(binary.LittleEndian.Uint16(chunk[3:5]))
			if a > b {
				a, b = b, a
			}
			if a == b {
				b++
			}
			iv := ipnet.Interval{Lo: a, Hi: b}
			ms := m.CreateAtoms(iv)
			os := o.CreateAtoms(iv)
			if fmt.Sprint(ms) != fmt.Sprint(os) {
				t.Fatalf("CreateAtoms(%v) splits: arena %v, oracle %v", iv, ms, os)
			}
		case 2:
			if !gc {
				continue
			}
			bounds := m.Bounds()
			k := int(binary.LittleEndian.Uint16(chunk[1:3])) % len(bounds)
			mid, mok := m.ReleaseBound(bounds[k])
			oid, ook := o.ReleaseBound(bounds[k])
			if mid != oid || mok != ook {
				t.Fatalf("ReleaseBound(%#x): arena (%d,%v), oracle (%d,%v)",
					bounds[k], mid, mok, oid, ook)
			}
		case 3:
			diffCompare(t, m, o)
		}
	}
	diffCompare(t, m, o)
}

// TestDifferentialRandom hammers the arena map against the oracle with
// long random scripts, both with and without garbage collection.
func TestDifferentialRandom(t *testing.T) {
	for _, gc := range []byte{0, 1} {
		for seed := int64(0); seed < 8; seed++ {
			rng := rand.New(rand.NewSource(seed))
			script := make([]byte, 1+5*2000)
			rng.Read(script)
			script[0] = gc
			t.Run(fmt.Sprintf("gc-%d/seed-%d", gc, seed), func(t *testing.T) {
				runDifferential(t, script)
			})
		}
	}
}

// TestDifferentialRecycleChurn forces heavy free-list traffic: split the
// same narrow region, release all its interior bounds, and repeat, so
// ids cycle through the free list and are re-minted with fresh stamps.
func TestDifferentialRecycleChurn(t *testing.T) {
	var script bytes.Buffer
	script.WriteByte(1) // gc on
	chunk := make([]byte, 5)
	for round := 0; round < 50; round++ {
		for i := 0; i < 8; i++ {
			chunk[0] = 0
			binary.LittleEndian.PutUint16(chunk[1:3], uint16(100+10*i))
			binary.LittleEndian.PutUint16(chunk[3:5], uint16(105+10*i))
			script.Write(chunk)
		}
		chunk[0] = 3 // checkpoint between split and merge phases
		script.Write(chunk)
		for i := 0; i < 20; i++ {
			chunk[0] = 2
			binary.LittleEndian.PutUint16(chunk[1:3], uint16(1+round+3*i))
			script.Write(chunk)
		}
	}
	runDifferential(t, script.Bytes())
}

// FuzzIntervalMapFlat is the differential fuzzer for the arena-backed
// boundary map: random operation scripts (see runDifferential for the
// encoding) run against both the flat implementation and the retained
// rbtree oracle, asserting identical atoms, split pairs, bounds, and
// allocation stamps. Seed corpus under testdata/fuzz/FuzzIntervalMapFlat
// covers GC on/off, id recycling, and re-split-after-merge histories.
func FuzzIntervalMapFlat(f *testing.F) {
	f.Add([]byte{})
	// gc off: pure splits, duplicate bounds.
	f.Add([]byte{0,
		0, 10, 0, 20, 0,
		1, 10, 0, 30, 0,
		0, 20, 0, 20, 0,
		3, 0, 0, 0, 0,
	})
	// gc on: split then merge then re-split recycled ids.
	f.Add([]byte{1,
		0, 10, 0, 20, 0,
		0, 30, 0, 40, 0,
		2, 1, 0, 0, 0,
		2, 1, 0, 0, 0,
		0, 10, 0, 40, 0,
		3, 0, 0, 0, 0,
	})
	rng := rand.New(rand.NewSource(99))
	long := make([]byte, 1+5*200)
	rng.Read(long)
	long[0] = 1
	f.Add(long)
	f.Fuzz(func(t *testing.T, data []byte) {
		runDifferential(t, data)
	})
}
