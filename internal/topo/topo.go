// Package topo generates the network topologies of the paper's evaluation
// (§4.2, Table 2). The paper used the UC Berkeley campus map, four
// Rocketfuel-measured AS graphs, the Airtel WAN from the Internet Topology
// Zoo, and a 4-switch ring; those inputs are proprietary or external, so —
// per the reproduction's substitution rule — we synthesize graphs with the
// same node counts and degree structure from seeded generators, which is
// sufficient because the verification algorithms only observe a directed
// graph of nodes and links.
//
// All generators are deterministic for a given seed, and every undirected
// adjacency is materialized as two directed links, matching the paper's
// directed edge-labelled graph.
package topo

import (
	"fmt"
	"math/rand"

	"deltanet/internal/netgraph"
)

// Build creates the named topology. Supported names: "berkeley", "inet",
// "rf1755", "rf3257", "rf6461", "airtel", "4switch".
func Build(name string) (*netgraph.Graph, error) {
	switch name {
	case "berkeley":
		return Campus(3, 6, 14), nil
	case "inet":
		return ASGraph(316, 3, 101), nil
	case "rf1755":
		return ASGraph(87, 3, 1755), nil
	case "rf3257":
		return ASGraph(161, 4, 3257), nil
	case "rf6461":
		return ASGraph(138, 4, 6461), nil
	case "airtel":
		return Airtel(), nil
	case "4switch":
		return Ring(4), nil
	default:
		return nil, fmt.Errorf("topo: unknown topology %q", name)
	}
}

// Names lists the supported topology names in the paper's Table 2 order.
func Names() []string {
	return []string{"berkeley", "inet", "rf1755", "rf3257", "rf6461", "airtel", "4switch"}
}

// Ring builds an n-switch bidirectional ring (the paper's 4Switch
// workaround topology, §4.2.2).
func Ring(n int) *netgraph.Graph {
	g := netgraph.New()
	nodes := make([]netgraph.NodeID, n)
	for i := range nodes {
		nodes[i] = g.AddNode(fmt.Sprintf("s%d", i+1))
	}
	for i := range nodes {
		j := (i + 1) % n
		g.AddLink(nodes[i], nodes[j])
		g.AddLink(nodes[j], nodes[i])
	}
	return g
}

// Campus builds a three-tier campus network in the style of the UC
// Berkeley topology: core switches fully meshed, distribution switches
// dual-homed to the core, access switches dual-homed to distribution.
// Campus(3, 6, 14) yields 23 nodes, matching Table 2's Berkeley row.
func Campus(core, dist, access int) *netgraph.Graph {
	g := netgraph.New()
	cores := make([]netgraph.NodeID, core)
	for i := range cores {
		cores[i] = g.AddNode(fmt.Sprintf("core%d", i+1))
	}
	for i := 0; i < core; i++ {
		for j := i + 1; j < core; j++ {
			biLink(g, cores[i], cores[j])
		}
	}
	dists := make([]netgraph.NodeID, dist)
	for i := range dists {
		dists[i] = g.AddNode(fmt.Sprintf("dist%d", i+1))
		biLink(g, dists[i], cores[i%core])
		biLink(g, dists[i], cores[(i+1)%core])
	}
	for i := 0; i < access; i++ {
		a := g.AddNode(fmt.Sprintf("acc%d", i+1))
		biLink(g, a, dists[i%dist])
		biLink(g, a, dists[(i+1)%dist])
	}
	return g
}

// ASGraph builds an AS-like router graph with n nodes by preferential
// attachment (each new node attaches m links to degree-weighted targets),
// which reproduces the heavy-tailed degree distribution Rocketfuel
// measured in real ISP backbones. Deterministic per seed.
func ASGraph(n, m int, seed int64) *netgraph.Graph {
	if m < 1 {
		m = 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := netgraph.New()
	nodes := make([]netgraph.NodeID, 0, n)
	// Degree-weighted target pool: node id repeated once per degree.
	var pool []netgraph.NodeID

	clique := m + 1
	if clique > n {
		clique = n
	}
	for i := 0; i < clique; i++ {
		nodes = append(nodes, g.AddNode(fmt.Sprintf("r%d", i+1)))
	}
	for i := 0; i < clique; i++ {
		for j := i + 1; j < clique; j++ {
			biLink(g, nodes[i], nodes[j])
			pool = append(pool, nodes[i], nodes[j])
		}
	}
	for i := clique; i < n; i++ {
		v := g.AddNode(fmt.Sprintf("r%d", i+1))
		nodes = append(nodes, v)
		seen := map[netgraph.NodeID]bool{}
		var chosen []netgraph.NodeID // kept ordered for determinism
		for len(chosen) < m {
			t := pool[rng.Intn(len(pool))]
			if t == v || seen[t] {
				continue
			}
			seen[t] = true
			chosen = append(chosen, t)
		}
		for _, t := range chosen {
			biLink(g, v, t)
			pool = append(pool, v, t)
		}
	}
	return g
}

// Airtel builds a 16-switch WAN shaped like the Airtel (AS 9498) topology
// used in the paper's SDN-IP experiments (§4.2.2): a national ring of
// major sites with cross-country chords — the structure in the Internet
// Topology Zoo entry, node count matching the paper's Mininet deployment.
func Airtel() *netgraph.Graph {
	g := netgraph.New()
	names := []string{
		"delhi", "mumbai", "chennai", "kolkata", "bangalore", "hyderabad",
		"pune", "ahmedabad", "jaipur", "lucknow", "nagpur", "bhubaneswar",
		"kochi", "chandigarh", "indore", "guwahati",
	}
	ids := make([]netgraph.NodeID, len(names))
	for i, nm := range names {
		ids[i] = g.AddNode(nm)
	}
	edges := [][2]int{
		// national ring
		{0, 8}, {8, 7}, {7, 1}, {1, 6}, {6, 4}, {4, 12}, {12, 2}, {2, 5},
		{5, 10}, {10, 3}, {3, 11}, {11, 15}, {15, 9}, {9, 13}, {13, 0},
		// chords
		{0, 1}, {0, 3}, {1, 2}, {1, 4}, {2, 3}, {4, 5}, {5, 6}, {10, 14},
		{14, 0}, {14, 1}, {9, 0}, {11, 2},
	}
	for _, e := range edges {
		biLink(g, ids[e[0]], ids[e[1]])
	}
	return g
}

func biLink(g *netgraph.Graph, a, b netgraph.NodeID) {
	g.AddLink(a, b)
	g.AddLink(b, a)
}

// SwitchNodes returns the non-sink nodes of a topology, the candidates for
// rule installation and traffic endpoints.
func SwitchNodes(g *netgraph.Graph) []netgraph.NodeID {
	var out []netgraph.NodeID
	for v := netgraph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if g.DropNode() == v {
			continue
		}
		out = append(out, v)
	}
	return out
}
