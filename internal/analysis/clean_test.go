package analysis

import (
	"os/exec"
	"testing"

	"deltanet/internal/analysis/dnlint"
)

// TestDnlintClean is the local mirror of CI's lint gate: the whole
// module must be clean under the full suite, so `go test ./...` catches
// an invariant violation before a push does.
func TestDnlintClean(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}
	diags, err := dnlint.Run("", []string{"deltanet/..."}, Suite())
	if err != nil {
		t.Fatalf("dnlint: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("fix the findings or annotate them //deltanet:nolint <analyzer> <reason> (see internal/analysis/dnlint)")
	}
}
