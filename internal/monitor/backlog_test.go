package monitor

import (
	"testing"

	"deltanet/internal/core"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
)

// churnEvents builds the line4 network, registers reach a->c, installs
// the second hop, then toggles the first hop n times — each toggle is
// one verdict transition. It returns the monitor and the published
// events in order.
func churnEvents(t *testing.T, n int) (*Monitor, []Event) {
	t.Helper()
	g, nodes, links := line4()
	net := core.NewNetwork(g, core.Options{})
	m := New(net, 0)
	m.Register(Reachable{From: nodes[0], To: nodes[2]})
	mustInsert(t, net, m, core.Rule{ID: 2, Source: nodes[1], Link: links[1],
		Match: ipnet.Interval{Lo: 0, Hi: 100}, Priority: 1})
	var all []Event
	all = append(all, toggleFirstHop(t, m, n)...)
	return m, all
}

// toggleFirstHop inserts/removes rule 1 (a->b) n times, starting with an
// insert when the rule is absent, returning the events published.
func toggleFirstHop(t *testing.T, m *Monitor, n int) []Event {
	t.Helper()
	var all []Event
	for i := 0; i < n; i++ {
		var d core.Delta
		var err error
		if m.net.NumRules() == 1 { // only the second hop installed
			err = m.net.InsertRuleInto(core.Rule{ID: 1, Source: 0, Link: 0,
				Match: ipnet.Interval{Lo: 0, Hi: 100}, Priority: 1}, &d)
		} else {
			err = m.net.RemoveRuleInto(1, &d)
		}
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, m.Apply(&d)...)
	}
	return all
}

// TestEventsSinceReplay: a consumer that saw a prefix of the stream gets
// exactly the missing suffix back, with no truncation reported while the
// backlog covers it.
func TestEventsSinceReplay(t *testing.T) {
	m, all := churnEvents(t, 6)
	if len(all) != 6 {
		t.Fatalf("churn produced %d events, want 6", len(all))
	}
	for since := uint64(0); since <= uint64(len(all)); since++ {
		rep := m.EventsSince(since)
		if rep.LostFrom != 0 || rep.LostTo != 0 {
			t.Fatalf("EventsSince(%d): lost %d:%d, want none", since, rep.LostFrom, rep.LostTo)
		}
		if rep.Head != uint64(len(all)) {
			t.Fatalf("EventsSince(%d): head %d, want %d", since, rep.Head, len(all))
		}
		want := all[since:]
		if len(rep.Events) != len(want) {
			t.Fatalf("EventsSince(%d): %d events, want %d", since, len(rep.Events), len(want))
		}
		for i := range rep.Events {
			if rep.Events[i].Seq != want[i].Seq || rep.Events[i].Kind != want[i].Kind || rep.Events[i].ID != want[i].ID {
				t.Fatalf("EventsSince(%d)[%d] = %+v, want %+v", since, i, rep.Events[i], want[i])
			}
		}
	}
	// A cursor ahead of the stream (another incarnation's) is reported
	// as a full gap, never as "caught up".
	if rep := m.EventsSince(99); rep.LostFrom != uint64(len(all))+1 || rep.LostTo != 99 || len(rep.Events) != 0 {
		t.Fatalf("foreign cursor: %+v, want lost %d:99", rep, len(all)+1)
	}
	if got := m.LastSeq(); got != 6 {
		t.Fatalf("LastSeq = %d, want 6", got)
	}
}

// TestEventsSinceTruncation: once churn pushes the requested suffix off
// the ring, the reply names the lost range instead of silently returning
// a stream with a hole in it.
func TestEventsSinceTruncation(t *testing.T) {
	m, _ := churnEvents(t, 2)
	m.SetBacklog(2)
	toggleFirstHop(t, m, 4)
	// Events 1..6 exist; the ring holds 5,6.
	rep := m.EventsSince(0)
	if rep.LostFrom != 1 || rep.LostTo != 4 {
		t.Fatalf("lost %d:%d, want 1:4", rep.LostFrom, rep.LostTo)
	}
	if len(rep.Events) != 2 || rep.Events[0].Seq != 5 || rep.Events[1].Seq != 6 {
		t.Fatalf("retained suffix = %+v, want seqs 5,6", rep.Events)
	}
	// A cursor inside the retained window is served without a gap.
	rep = m.EventsSince(5)
	if rep.LostFrom != 0 || len(rep.Events) != 1 || rep.Events[0].Seq != 6 {
		t.Fatalf("EventsSince(5) = %+v, want seq 6 only", rep)
	}
	// A cursor at the head is a no-op.
	rep = m.EventsSince(6)
	if rep.LostFrom != 0 || len(rep.Events) != 0 || rep.Head != 6 {
		t.Fatalf("EventsSince(6) = %+v, want empty at head 6", rep)
	}
}

// TestEventsSinceDisabledBacklog: with retention off, every missed
// suffix is reported as fully lost — never silently empty.
func TestEventsSinceDisabledBacklog(t *testing.T) {
	m, _ := churnEvents(t, 0)
	m.SetBacklog(0)
	toggleFirstHop(t, m, 1)
	rep := m.EventsSince(0)
	if len(rep.Events) != 0 || rep.LostFrom != 1 || rep.LostTo != m.LastSeq() || rep.LostTo == 0 {
		t.Fatalf("disabled backlog: %+v lastSeq=%d", rep, m.LastSeq())
	}
}

// TestSetBacklogResize: shrinking keeps the newest events; growing
// preserves everything retained.
func TestSetBacklogResize(t *testing.T) {
	m, _ := churnEvents(t, 5)
	m.SetBacklog(3)
	rep := m.EventsSince(0)
	if rep.LostFrom != 1 || rep.LostTo != 2 || len(rep.Events) != 3 || rep.Events[0].Seq != 3 {
		t.Fatalf("after shrink: %+v, want seqs 3..5 lost 1:2", rep)
	}
	m.SetBacklog(10)
	rep = m.EventsSince(2)
	if rep.LostFrom != 0 || len(rep.Events) != 3 {
		t.Fatalf("after grow: %+v, want the same 3 events", rep)
	}
	if got := m.Backlog(); got != 10 {
		t.Fatalf("Backlog() = %d, want 10", got)
	}
}

// TestSnapshotRestoreRoundTrip: SnapshotSpecs → RestoreSpecs on a fresh
// monitor over an equivalently restored network reproduces every
// invariant (including BlackHoleFree's sink set, which the wire String
// form alone cannot carry) with the verdict a from-scratch evaluation
// gives.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	build := func() (*netgraph.Graph, *core.Network, []netgraph.NodeID, []netgraph.LinkID) {
		g, nodes, links := line4()
		n := core.NewNetwork(g, core.Options{})
		return g, n, nodes, links
	}
	_, n, nodes, links := build()
	var d core.Delta
	for _, r := range []core.Rule{
		{ID: 1, Source: nodes[0], Link: links[0], Match: ipnet.Interval{Lo: 0, Hi: 100}, Priority: 1},
		{ID: 2, Source: nodes[1], Link: links[1], Match: ipnet.Interval{Lo: 0, Hi: 50}, Priority: 1},
	} {
		if err := n.InsertRuleInto(r, &d); err != nil {
			t.Fatal(err)
		}
	}

	m := New(n, 0)
	specs := []Spec{
		Reachable{From: nodes[0], To: nodes[2]},
		Waypoint{From: nodes[0], To: nodes[3], Via: nodes[1]},
		Isolated{GroupA: nodes[:1], GroupB: nodes[3:]},
		LoopFree{},
		BlackHoleFree{Sinks: map[netgraph.NodeID]bool{nodes[2]: true, nodes[3]: true}},
		BlackHoleFree{},
	}
	for _, s := range specs {
		m.Register(s)
	}

	saved := m.SnapshotSpecs()
	if len(saved) != len(specs) {
		t.Fatalf("SnapshotSpecs: %d lines, want %d: %q", len(saved), len(specs), saved)
	}
	// Each line round-trips through ParseSpec to the same canonical form.
	for _, line := range saved {
		s, err := ParseSpec(line)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", line, err)
		}
		if got := FormatSpec(s); got != line {
			t.Fatalf("round trip %q -> %q", line, got)
		}
	}

	// Restore into a fresh monitor over a restored network: every
	// invariant must come back with its from-scratch verdict.
	_, n2, _, _ := build()
	if err := n2.Restore(n.Snapshot()); err != nil {
		t.Fatal(err)
	}
	m2 := New(n2, 0)
	if err := m2.RestoreSpecs(saved); err != nil {
		t.Fatal(err)
	}
	want := m.Invariants()
	got := m2.Invariants()
	if len(got) != len(want) {
		t.Fatalf("restored %d invariants, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Status != want[i].Status || FormatSpec(got[i].Spec) != FormatSpec(want[i].Spec) {
			t.Fatalf("invariant %d: restored %v %q, want %v %q",
				i, got[i].Status, FormatSpec(got[i].Spec), want[i].Status, FormatSpec(want[i].Spec))
		}
	}
	// And the restored registrations dedup against the originals' keys:
	// re-registering every saved line a second time must not grow the set.
	if err := m2.RestoreSpecs(saved); err != nil {
		t.Fatal(err)
	}
	if m2.NumRegistered() != len(specs) {
		t.Fatalf("re-restore grew the monitor to %d, want %d (refcount dedup)", m2.NumRegistered(), len(specs))
	}
}
