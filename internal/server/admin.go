package server

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"deltanet/internal/metrics"
)

// AdminHandler returns the HTTP admin surface dnserve mounts behind
// -admin: Prometheus metrics, liveness, a human-readable status page,
// and the stdlib pprof profilers. The handlers are mounted explicitly
// (not via http.DefaultServeMux) so importing this package never leaks
// profiling endpoints into an unrelated mux.
//
//	/metrics        reg rendered as Prometheus text exposition format
//	/healthz        "ok" while serving, 503 once Close has begun
//	/statusz        engine, monitor, burst, trace, and connection summary
//	/debug/pprof/…  net/http/pprof (profile, heap, trace, …)
func (s *Server) AdminHandler(reg *metrics.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WriteText(w); err != nil {
			// Headers are gone; all we can do is abort the body.
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		select {
		case <-s.closed:
			http.Error(w, "closing", http.StatusServiceUnavailable)
		default:
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "ok")
		}
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.writeStatusz(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writeStatusz renders the human-readable status page.
func (s *Server) writeStatusz(w http.ResponseWriter) {
	s.mu.RLock()
	rules, atoms := s.net.NumRules(), s.net.NumAtoms()
	links, nodes := s.graph.NumLinks(), s.graph.NumNodes()
	s.mu.RUnlock()
	st := s.mon.Stats()
	burst := s.mon.Burst()
	s.connMu.Lock()
	conns := len(s.conns)
	s.connMu.Unlock()

	fmt.Fprintf(w, "deltanet dnserve\nuptime: %s\n\n", time.Since(s.started).Round(time.Second))
	fmt.Fprintf(w, "engine: rules=%d atoms=%d links=%d nodes=%d\n", rules, atoms, links, nodes)
	fmt.Fprintf(w, "monitor: registered=%d updates=%d evaluations=%d skips=%d range_skips=%d events=%d loop_rescan_atoms=%d\n",
		st.Registered, st.Updates, st.Evaluations, st.Skips, st.RangeSkips, st.Events, st.LoopRescanAtoms)
	fmt.Fprintf(w, "burst: max_deltas=%d max_age=%s pending=%d bursts=%d coalesced=%d\n",
		burst.MaxDeltas, burst.MaxAge, st.Pending, st.Bursts, st.Coalesced)
	fmt.Fprintf(w, "events: backlog=%d/%d subscribers=%d\n",
		s.mon.BacklogLen(), s.mon.Backlog(), s.mon.NumSubscribers())
	fmt.Fprintf(w, "conns: active=%d total=%d bytes_in=%d bytes_out=%d scanner_errors=%d\n",
		conns, s.connsTotal.Load(), s.bytesIn.Load(), s.bytesOut.Load(), s.scanErrs.Load())

	s.tr.mu.Lock()
	trOn, trN, slowNs, slowCount := !s.tr.off, s.tr.n, s.tr.slowNs, s.tr.slowCount
	s.tr.mu.Unlock()
	fmt.Fprintf(w, "trace: on=%t retained=%d/%d slow_threshold=%s slow_updates=%d\n",
		trOn, trN, traceRingCap, time.Duration(slowNs), slowCount)
}
