package core

import (
	"math/rand"
	"testing"

	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
)

// TestFullSpaceRule: a 0.0.0.0/0 rule touches the initial atom only and
// never splits anything.
func TestFullSpaceRule(t *testing.T) {
	g := netgraph.New()
	s := g.AddNode("s")
	l := g.AddLink(s, g.AddNode("d"))
	n := NewNetwork(g, Options{})
	d, err := n.InsertRule(Rule{ID: 1, Source: s, Link: l, Match: iv(0, 1<<32), Priority: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.NewAtoms) != 0 {
		t.Fatalf("full-space rule split atoms: %+v", d.NewAtoms)
	}
	if n.NumAtoms() != 1 {
		t.Fatalf("atoms=%d", n.NumAtoms())
	}
	if n.Label(l).Len() != 1 {
		t.Fatalf("label=%v", n.Label(l))
	}
}

// TestBoundaryAdjacentRules: rules that touch at a boundary share exactly
// one key and never overlap in atoms.
func TestBoundaryAdjacentRules(t *testing.T) {
	g := netgraph.New()
	s := g.AddNode("s")
	la := g.AddLink(s, g.AddNode("a"))
	lb := g.AddLink(s, g.AddNode("b"))
	n := NewNetwork(g, Options{})
	n.InsertRule(Rule{ID: 1, Source: s, Link: la, Match: iv(0, 100), Priority: 1})
	n.InsertRule(Rule{ID: 2, Source: s, Link: lb, Match: iv(100, 200), Priority: 1})
	if n.Label(la).Intersects(n.Label(lb)) {
		t.Fatal("adjacent rules share atoms")
	}
	if got := n.ForwardLink(s, n.AtomOf(99)); got != la {
		t.Fatalf("99 -> %d", got)
	}
	if got := n.ForwardLink(s, n.AtomOf(100)); got != lb {
		t.Fatalf("100 -> %d", got)
	}
}

// TestSingleAddressRules: /32-style one-address intervals work and split
// correctly at both ends.
func TestSingleAddressRules(t *testing.T) {
	g := netgraph.New()
	s := g.AddNode("s")
	l := g.AddLink(s, g.AddNode("d"))
	n := NewNetwork(g, Options{})
	for i := uint64(0); i < 20; i += 2 {
		if _, err := n.InsertRule(Rule{ID: RuleID(i + 1), Source: s, Link: l,
			Match: iv(i, i+1), Priority: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for addr := uint64(0); addr < 20; addr++ {
		want := netgraph.NoLink
		if addr%2 == 0 {
			want = l
		}
		if got := n.ForwardLink(s, n.AtomOf(addr)); got != want {
			t.Fatalf("addr %d -> %d want %d", addr, got, want)
		}
	}
	if msg := n.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

// TestGCDoubleBoundSharing: two rules sharing both bounds; GC must only
// reclaim after the second removal.
func TestGCDoubleBoundSharing(t *testing.T) {
	g := netgraph.New()
	s := g.AddNode("s")
	l := g.AddLink(s, g.AddNode("d"))
	n := NewNetwork(g, Options{GC: true})
	n.InsertRule(Rule{ID: 1, Source: s, Link: l, Match: iv(10, 20), Priority: 1})
	n.InsertRule(Rule{ID: 2, Source: s, Link: l, Match: iv(10, 20), Priority: 2})
	atoms := n.NumAtoms()
	n.RemoveRule(1)
	if n.NumAtoms() != atoms {
		t.Fatal("GC reclaimed shared bounds too early")
	}
	if msg := n.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	n.RemoveRule(2)
	if n.NumAtoms() != 1 {
		t.Fatalf("atoms=%d after removing both", n.NumAtoms())
	}
}

// TestGCPartialBoundSharing: rules share one bound; removing one reclaims
// only its exclusive bound.
func TestGCPartialBoundSharing(t *testing.T) {
	g := netgraph.New()
	s := g.AddNode("s")
	l := g.AddLink(s, g.AddNode("d"))
	n := NewNetwork(g, Options{GC: true})
	n.InsertRule(Rule{ID: 1, Source: s, Link: l, Match: iv(10, 20), Priority: 1})
	n.InsertRule(Rule{ID: 2, Source: s, Link: l, Match: iv(20, 30), Priority: 1})
	// Keys: 0, 10, 20, 30, MAX -> 4 atoms.
	if n.NumAtoms() != 4 {
		t.Fatalf("atoms=%d", n.NumAtoms())
	}
	n.RemoveRule(1) // bound 10 exclusive, bound 20 shared
	if n.NumAtoms() != 3 {
		t.Fatalf("atoms=%d after partial reclaim", n.NumAtoms())
	}
	if got := n.ForwardLink(s, n.AtomOf(25)); got != l {
		t.Fatal("survivor rule broken")
	}
	if msg := n.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

// TestHighChurnSamePoint: repeated insert/remove of rules centred on one
// address stresses split-copy and GC merge paths together.
func TestHighChurnSamePoint(t *testing.T) {
	g := netgraph.New()
	s := g.AddNode("s")
	l := g.AddLink(s, g.AddNode("d"))
	n := NewNetwork(g, Options{GC: true})
	rng := rand.New(rand.NewSource(13))
	const centre = 1 << 20
	id := RuleID(1)
	var live []RuleID
	for i := 0; i < 2000; i++ {
		if len(live) == 0 || rng.Intn(10) < 6 {
			w := uint64(1 + rng.Intn(1000))
			if _, err := n.InsertRule(Rule{ID: id, Source: s, Link: l,
				Match: iv(centre-w, centre+w), Priority: Priority(rng.Intn(100))}); err != nil {
				t.Fatal(err)
			}
			live = append(live, id)
			id++
		} else {
			k := rng.Intn(len(live))
			if _, err := n.RemoveRule(live[k]); err != nil {
				t.Fatal(err)
			}
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	if msg := n.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	// Atom count is bounded by live rules' bounds (+ initial atom).
	if n.NumAtoms() > 2*len(live)+1 {
		t.Fatalf("atoms=%d live=%d: GC not bounding growth", n.NumAtoms(), len(live))
	}
}

// TestPriorityMonotoneShadowing: inserting ever-higher priorities on the
// same range produces exactly one ownership handover per insert.
func TestPriorityMonotoneShadowing(t *testing.T) {
	g := netgraph.New()
	s := g.AddNode("s")
	links := []netgraph.LinkID{
		g.AddLink(s, g.AddNode("a")),
		g.AddLink(s, g.AddNode("b")),
	}
	n := NewNetwork(g, Options{})
	for i := 0; i < 20; i++ {
		d, err := n.InsertRule(Rule{ID: RuleID(i + 1), Source: s, Link: links[i%2],
			Match: iv(0, 1000), Priority: Priority(i)})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			if len(d.Added) != 1 || len(d.Removed) != 0 {
				t.Fatalf("first insert delta: %+v", d)
			}
			continue
		}
		if len(d.Added) != 1 || len(d.Removed) != 1 {
			t.Fatalf("insert %d delta: added=%d removed=%d", i, len(d.Added), len(d.Removed))
		}
	}
	// And descending priorities afterwards are fully shadowed: no delta.
	d, err := n.InsertRule(Rule{ID: 999, Source: s, Link: links[0],
		Match: iv(0, 1000), Priority: -5})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("shadowed insert delta: %+v", d)
	}
}

// TestSpaceOption: a network over a narrow space rejects wide rules and
// works within it.
func TestSpaceOption(t *testing.T) {
	g := netgraph.New()
	s := g.AddNode("s")
	l := g.AddLink(s, g.AddNode("d"))
	n := NewNetwork(g, Options{Space: ipnet.Space{Bits: 8}})
	if _, err := n.InsertRule(Rule{ID: 1, Source: s, Link: l, Match: iv(0, 300), Priority: 1}); err == nil {
		t.Fatal("rule beyond 8-bit space accepted")
	}
	if _, err := n.InsertRule(Rule{ID: 1, Source: s, Link: l, Match: iv(0, 256), Priority: 1}); err != nil {
		t.Fatal(err)
	}
	if n.Space().Bits != 8 {
		t.Fatal("space accessor")
	}
}
