package datasets

import (
	"testing"

	"deltanet/internal/core"
	"deltanet/internal/trace"
)

func TestBuildAllNamesSmall(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			tr, err := Build(name, 0.02)
			if err != nil {
				t.Fatal(err)
			}
			if tr.Name != name {
				t.Fatalf("name=%q", tr.Name)
			}
			if len(tr.Ops) == 0 {
				t.Fatal("no operations")
			}
			info := Describe(tr)
			if info.Nodes == 0 || info.Links == 0 || info.Operations != len(tr.Ops) {
				t.Fatalf("info=%+v", info)
			}
			// Replay validity: every op applies cleanly.
			n := core.NewNetwork(tr.Graph, core.Options{})
			var d core.Delta
			for i, op := range tr.Ops {
				if err := trace.Apply(n, op, &d); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			}
			if msg := n.CheckInvariants(); msg != "" {
				t.Fatal(msg)
			}
		})
	}
}

func TestUnknownDataset(t *testing.T) {
	if _, err := Build("nope", 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestSyntheticInsertThenRemoveAll(t *testing.T) {
	tr, err := Build("rf1755", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	inserts := tr.NumInserts()
	if inserts*2 != len(tr.Ops) {
		t.Fatalf("ops=%d inserts=%d: synthetic sets remove every rule", len(tr.Ops), inserts)
	}
	// Full replay drains the rule table.
	n := core.NewNetwork(tr.Graph, core.Options{})
	var d core.Delta
	for _, op := range tr.Ops {
		if err := trace.Apply(n, op, &d); err != nil {
			t.Fatal(err)
		}
	}
	if n.NumRules() != 0 {
		t.Fatalf("rules left: %d", n.NumRules())
	}
}

func TestDeterministicBuilds(t *testing.T) {
	a, err := Build("berkeley", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build("berkeley", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Ops) != len(b.Ops) {
		t.Fatalf("op counts differ: %d vs %d", len(a.Ops), len(b.Ops))
	}
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatalf("op %d differs", i)
		}
	}
}

func TestScaleGrowsDatasets(t *testing.T) {
	small, _ := Build("berkeley", 0.02)
	big, _ := Build("berkeley", 0.05)
	if len(big.Ops) <= len(small.Ops) {
		t.Fatalf("scale ineffective: %d <= %d", len(big.Ops), len(small.Ops))
	}
	// Zero/negative scale falls back to 1.0.
	def, err := Build("4switch", -1)
	if err != nil || len(def.Ops) == 0 {
		t.Fatal("default scale broken")
	}
}
