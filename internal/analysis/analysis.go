// Package analysis aggregates deltanet's custom lint suite. The four
// analyzers encode invariants the compiler cannot check but correctness
// and throughput depend on (see each analyzer's package doc):
//
//   - pointerfree: //deltanet:pointerfree types must contain no
//     pointers (the PR 5 GC-regression class, made unrepresentable)
//   - lockorder: //deltanet:lockrank mutexes must be acquired in
//     increasing rank order, never leak past a return, never be copied
//   - guardedwriter: net.Conn writes go through the
//     //deltanet:connwriter type with every error checked
//   - wireproto: dispatch code, the command registry, the README
//     protocol table and the fuzz seeds must agree
//
// cmd/dnlint runs the suite from the command line and in CI;
// TestDnlintClean runs it as part of `go test ./...`.
package analysis

import (
	"deltanet/internal/analysis/dnlint"
	"deltanet/internal/analysis/guardedwriter"
	"deltanet/internal/analysis/lockorder"
	"deltanet/internal/analysis/pointerfree"
	"deltanet/internal/analysis/wireproto"
)

// Suite returns the deltanet analyzers in a stable order.
func Suite() []*dnlint.Analyzer {
	return []*dnlint.Analyzer{
		pointerfree.Analyzer,
		lockorder.Analyzer,
		guardedwriter.Analyzer,
		wireproto.Analyzer,
	}
}

// Run applies the full suite to the packages matched by patterns
// (resolved from the current directory) and returns the surviving
// diagnostics, sorted by position.
func Run(patterns []string) ([]dnlint.Diagnostic, error) {
	return dnlint.Run("", patterns, Suite())
}
