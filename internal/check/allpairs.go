package check

import (
	"runtime"
	"sync"

	"deltanet/internal/bitset"
	"deltanet/internal/core"
	"deltanet/internal/netgraph"
)

// AllPairs implements Algorithm 3 (paper §3.3): the Floyd–Warshall
// transitive closure of packet flows between all pairs of nodes, with the
// usual (min, +) operators replaced by (∪, ∩) over atom sets. The result
// R[i][j] is the set of atoms that can flow from node i to node j along
// one or more hops.
//
// Complexity is O(K·|V|³) bit operations, packed 64 per word (the paper
// notes this class of query is for pre-deployment testing rather than the
// per-update hot path). A routine induction on k shows R computes
// reachability of every α-packet, as in the paper's footnote 3.
func AllPairs(n *core.Network) [][]*bitset.Set {
	g := n.Graph()
	V := g.NumNodes()
	r := initAllPairs(n, V)
	for k := 0; k < V; k++ {
		rowK := r[k]
		for i := 0; i < V; i++ {
			rik := r[i][k]
			if rik.Empty() {
				continue
			}
			rowI := r[i]
			for j := 0; j < V; j++ {
				if i == j {
					continue
				}
				rowI[j].OrAnd(rik, rowK[j])
			}
		}
	}
	return r
}

// AllPairsParallel is AllPairs with the inner i-loop fanned out over
// goroutines per pivot k — the parallelization the paper's §6 points out
// is available because atom-set operations per (i, j) are independent for
// a fixed pivot. workers ≤ 0 selects GOMAXPROCS.
//
// Safety: during pass k, updates that target row k or column k are
// mathematically subsets of the existing sets (r[k][j] ∪= r[k][k] ∩ r[k][j]
// and r[i][k] ∪= r[i][k] ∩ r[k][k]), and bitset.OrAnd performs no store
// when nothing changes, so row k and column k are never written while
// other goroutines read them; every other cell is written only by the
// goroutine owning its row.
func AllPairsParallel(n *core.Network, workers int) [][]*bitset.Set {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	g := n.Graph()
	V := g.NumNodes()
	r := initAllPairs(n, V)
	var wg sync.WaitGroup
	for k := 0; k < V; k++ {
		rowK := r[k]
		rows := make(chan int, V)
		for i := 0; i < V; i++ {
			rows <- i
		}
		close(rows)
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range rows {
					rik := r[i][k]
					if rik.Empty() {
						continue
					}
					rowI := r[i]
					for j := 0; j < V; j++ {
						if i != j {
							rowI[j].OrAnd(rik, rowK[j])
						}
					}
				}
			}()
		}
		wg.Wait()
	}
	return r
}

func initAllPairs(n *core.Network, V int) [][]*bitset.Set {
	g := n.Graph()
	r := make([][]*bitset.Set, V)
	for i := range r {
		r[i] = make([]*bitset.Set, V)
		for j := range r[i] {
			r[i][j] = bitset.New(n.MaxAtomID())
		}
	}
	for _, l := range g.Links() {
		r[l.Src][l.Dst].UnionWith(n.Label(l.ID))
	}
	return r
}

// PairReach answers one (i, j) cell from an AllPairs result, provided for
// symmetry with the incremental API.
func PairReach(r [][]*bitset.Set, i, j netgraph.NodeID) *bitset.Set { return r[i][j] }
