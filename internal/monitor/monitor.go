// Package monitor is Delta-net's incremental invariant monitor: callers
// register standing invariants (reachability, waypointing, isolation,
// loop freedom, black-hole freedom) and the monitor keeps each one's
// verdict current as rule updates stream through the engine.
//
// The whole point of Delta-net (paper §3.3) is that every rule update
// yields a delta-graph, so invariants should be re-checked from that
// delta rather than recomputed from scratch. The monitor realizes this
// for arbitrary standing queries with a dependency index: each
// evaluation records the set of links it examined, and an update only
// re-evaluates the invariants whose dependency set intersects the
// update's changed labels (plus the structurally-global checks, which
// re-evaluate incrementally from the delta itself). Re-evaluations fan
// out over the check package's worker pool, and verdict transitions are
// emitted as Violation/Cleared events to subscribers.
//
// Concurrency: Apply, Register, Unregister, Subscribe and the query
// methods are safe to call from multiple goroutines, but the monitor
// only reads the network — the caller must guarantee the network is not
// mutated during a call (the Checker's single-writer discipline and the
// server's RWMutex both do).
package monitor

import (
	"fmt"
	"sync"

	"deltanet/internal/bitset"
	"deltanet/internal/check"
	"deltanet/internal/core"
)

// ID identifies one registered invariant within a monitor.
type ID int64

// Status is an invariant's current verdict.
type Status uint8

const (
	// Holds means the invariant was satisfied at the last evaluation.
	Holds Status = iota
	// Violated means the invariant was falsified at the last evaluation.
	Violated
)

func (s Status) String() string {
	if s == Violated {
		return "violated"
	}
	return "holds"
}

// EventKind distinguishes the two verdict transitions.
type EventKind uint8

const (
	// Violation is the Holds -> Violated transition.
	Violation EventKind = iota
	// Cleared is the Violated -> Holds transition.
	Cleared
)

func (k EventKind) String() string {
	if k == Cleared {
		return "cleared"
	}
	return "violation"
}

// Event records one verdict transition. Seq increases monotonically
// across all events of a monitor, so subscribers can order and detect
// gaps.
type Event struct {
	Seq    uint64
	ID     ID
	Spec   Spec
	Kind   EventKind
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("event %d %s %s", e.ID, e.Kind, e.Spec)
}

// invariant pairs a registered spec with its cached monitor state.
type invariant struct {
	id   ID
	spec Spec
	st   state
}

// Stats summarizes a monitor's work so far.
type Stats struct {
	// Registered is the current number of standing invariants.
	Registered int
	// Evaluations counts invariant re-evaluations triggered by deltas
	// (registration-time and RecheckAll evaluations excluded).
	Evaluations uint64
	// Skips counts invariants left untouched by a delta because their
	// dependency set did not intersect the changed labels — the
	// incremental win.
	Skips uint64
	// Events counts verdict transitions emitted.
	Events uint64
}

// Monitor maintains standing invariants over one network.
type Monitor struct {
	mu      sync.Mutex
	net     *core.Network
	workers int

	invs   map[ID]*invariant
	order  []ID // registration order, for deterministic event emission
	nextID ID
	seq    uint64

	subs map[*Subscription]struct{}

	evals, skips, events uint64
}

// New returns a monitor over the network. workers bounds the evaluation
// fan-out; ≤ 0 selects GOMAXPROCS.
func New(net *core.Network, workers int) *Monitor {
	return &Monitor{
		net:     net,
		workers: workers,
		invs:    map[ID]*invariant{},
		subs:    map[*Subscription]struct{}{},
	}
}

// Register adds a standing invariant, evaluates it immediately, and
// returns its id and initial status. Registration emits no event: events
// are transitions, and a fresh invariant has nothing to transition from.
func (m *Monitor) Register(s Spec) (ID, Status) {
	m.mu.Lock()
	defer m.mu.Unlock()
	inv := &invariant{id: m.nextID, spec: s}
	m.nextID++
	v := s.eval(m.net, nil, &inv.st)
	inv.st.status = statusOf(v)
	inv.st.detail = v.detail
	inv.st.linksAtEval = m.net.Graph().NumLinks()
	m.invs[inv.id] = inv
	m.order = append(m.order, inv.id)
	return inv.id, inv.st.status
}

// Unregister removes an invariant; it reports whether the id was
// registered.
func (m *Monitor) Unregister(id ID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.invs[id]; !ok {
		return false
	}
	delete(m.invs, id)
	for i, v := range m.order {
		if v == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	return true
}

// Status returns an invariant's cached verdict and its human-readable
// detail.
func (m *Monitor) Status(id ID) (Status, string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	inv, ok := m.invs[id]
	if !ok {
		return 0, "", false
	}
	return inv.st.status, inv.st.detail, true
}

// InvariantInfo describes one registered invariant and its cached
// verdict.
type InvariantInfo struct {
	ID     ID
	Spec   Spec
	Status Status
	Detail string
}

// Invariants lists the registered invariants in registration order with
// their cached verdicts — the snapshot a fresh subscriber pairs with the
// event stream.
func (m *Monitor) Invariants() []InvariantInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]InvariantInfo, 0, len(m.order))
	for _, id := range m.order {
		inv := m.invs[id]
		out = append(out, InvariantInfo{ID: inv.id, Spec: inv.spec, Status: inv.st.status, Detail: inv.st.detail})
	}
	return out
}

// NumRegistered returns the current number of standing invariants.
func (m *Monitor) NumRegistered() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.invs)
}

// Stats returns the monitor's work counters.
func (m *Monitor) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Registered:  len(m.invs),
		Evaluations: m.evals,
		Skips:       m.skips,
		Events:      m.events,
	}
}

// Apply consumes one update's delta-graph: invariants whose dependency
// sets intersect the changed labels are re-evaluated (fanned out over the
// worker pool) and verdict transitions are returned in registration order
// and published to subscribers. Call it after every InsertRule,
// RemoveRule, or ApplyBatch, before the delta is reused.
func (m *Monitor) Apply(d *core.Delta) []Event {
	return m.ApplyWithLoops(d, nil, false)
}

// ApplyWithLoops is Apply for callers that already ran the per-update
// delta loop check: when loopsKnown is true, loops is taken as that
// check's authoritative result for d (it may be empty) and a registered
// LoopFree invariant reuses it instead of re-walking the delta.
func (m *Monitor) ApplyWithLoops(d *core.Delta, loops []check.Loop, loopsKnown bool) []Event {
	if d == nil || d.Empty() {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.invs) == 0 {
		return nil
	}
	changed := bitset.New(m.net.Graph().NumLinks())
	for _, la := range d.Added {
		changed.Add(int(la.Link))
	}
	for _, la := range d.Removed {
		changed.Add(int(la.Link))
	}
	var dirty []*invariant
	for _, id := range m.order {
		inv := m.invs[id]
		if inv.spec.dirty(&inv.st, d, changed) {
			dirty = append(dirty, inv)
		} else {
			m.skips++
		}
	}
	m.evals += uint64(len(dirty))
	return m.evaluate(dirty, &applyCtx{d: d, loops: loops, loopsKnown: loopsKnown})
}

// RecheckAll re-evaluates every registered invariant from scratch,
// ignoring dependency sets — the audit path, and the naive baseline the
// benchmarks compare Apply against. Transitions are returned and
// published exactly as for Apply.
func (m *Monitor) RecheckAll() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	all := make([]*invariant, 0, len(m.order))
	for _, id := range m.order {
		all = append(all, m.invs[id])
	}
	return m.evaluate(all, nil)
}

// evaluate runs the given invariants (in parallel), applies their new
// verdicts, and publishes transitions. Caller holds m.mu.
func (m *Monitor) evaluate(invs []*invariant, ctx *applyCtx) []Event {
	if len(invs) == 0 {
		return nil
	}
	verdicts := make([]verdict, len(invs))
	check.RunParallel(m.workers, len(invs), func(i int) {
		verdicts[i] = invs[i].spec.eval(m.net, ctx, &invs[i].st)
	})
	numLinks := m.net.Graph().NumLinks()
	var events []Event
	for i, inv := range invs {
		newStatus := statusOf(verdicts[i])
		inv.st.detail = verdicts[i].detail
		inv.st.linksAtEval = numLinks
		if newStatus == inv.st.status {
			continue
		}
		inv.st.status = newStatus
		kind := Cleared
		if newStatus == Violated {
			kind = Violation
		}
		m.seq++
		events = append(events, Event{
			Seq:    m.seq,
			ID:     inv.id,
			Spec:   inv.spec,
			Kind:   kind,
			Detail: verdicts[i].detail,
		})
	}
	m.publish(events)
	return events
}

func statusOf(v verdict) Status {
	if v.violated {
		return Violated
	}
	return Holds
}

// Subscription delivers a monitor's events to one consumer. Receive from
// C; when the sender outpaces the consumer, events are dropped rather
// than blocking the update path, and Dropped counts them.
type Subscription struct {
	// C carries the events. It is closed by Cancel.
	C <-chan Event

	m       *Monitor
	ch      chan Event
	dropped uint64 // guarded by m.mu
}

// Subscribe registers an event consumer with the given channel buffer
// (≤ 0 selects a default of 64).
func (m *Monitor) Subscribe(buf int) *Subscription {
	if buf <= 0 {
		buf = 64
	}
	s := &Subscription{m: m, ch: make(chan Event, buf)}
	s.C = s.ch
	m.mu.Lock()
	m.subs[s] = struct{}{}
	m.mu.Unlock()
	return s
}

// Cancel removes the subscription and closes C. It is idempotent.
func (s *Subscription) Cancel() {
	s.m.mu.Lock()
	defer s.m.mu.Unlock()
	if _, ok := s.m.subs[s]; ok {
		delete(s.m.subs, s)
		close(s.ch)
	}
}

// Dropped returns the number of events lost to a full buffer.
func (s *Subscription) Dropped() uint64 {
	s.m.mu.Lock()
	defer s.m.mu.Unlock()
	return s.dropped
}

// publish fans events out to subscribers without blocking: the update
// path must never wait on a slow consumer. Caller holds m.mu, which also
// serializes against Cancel's close.
func (m *Monitor) publish(events []Event) {
	m.events += uint64(len(events))
	for _, ev := range events {
		for sub := range m.subs {
			select {
			case sub.ch <- ev:
			default:
				sub.dropped++
			}
		}
	}
}
