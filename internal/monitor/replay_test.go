package monitor

import (
	"testing"

	"deltanet/internal/core"
	"deltanet/internal/ipnet"
)

// TestApplyReplayTracksPrimaryNumbering drives a primary monitor
// normally and a replica via ApplyReplay with the primary's update seqs,
// and checks verdicts, update counters, and event update-ranges agree.
func TestApplyReplayTracksPrimaryNumbering(t *testing.T) {
	g, nodes, links := line4()
	prim := core.NewNetwork(g, core.Options{})
	pm := New(prim, 0)

	g2, nodes2, links2 := line4()
	repl := core.NewNetwork(g2, core.Options{})
	rm := New(repl, 0)

	pID, _ := pm.Register(Reachable{From: nodes[0], To: nodes[2]})
	rID, _ := rm.Register(Reachable{From: nodes2[0], To: nodes2[2]})

	rules := []core.Rule{
		{ID: 1, Source: nodes[0], Link: links[0], Match: ipnet.Interval{Lo: 0, Hi: 100}, Priority: 1},
		{ID: 2, Source: nodes[1], Link: links[1], Match: ipnet.Interval{Lo: 0, Hi: 100}, Priority: 1},
	}
	for i, r := range rules {
		var d core.Delta
		if err := prim.InsertRuleInto(r, &d); err != nil {
			t.Fatal(err)
		}
		pev := pm.Apply(&d)
		seq := pm.UpdateSeq()

		r2 := r
		r2.Source = nodes2[i]
		r2.Link = links2[i]
		var d2 core.Delta
		if err := repl.InsertRuleInto(r2, &d2); err != nil {
			t.Fatal(err)
		}
		rev := rm.ApplyReplay(&d2, nil, false, seq)
		if len(rev) != len(pev) {
			t.Fatalf("update %d: replica events %v, primary %v", i+1, rev, pev)
		}
		for j := range rev {
			if rev[j].Kind != pev[j].Kind || rev[j].Seq != pev[j].Seq ||
				rev[j].FirstUpdate != pev[j].FirstUpdate || rev[j].LastUpdate != pev[j].LastUpdate {
				t.Fatalf("update %d event %d: replica %+v, primary %+v", i+1, j, rev[j], pev[j])
			}
		}
	}
	if rm.UpdateSeq() != pm.UpdateSeq() {
		t.Fatalf("update seq: replica %d, primary %d", rm.UpdateSeq(), pm.UpdateSeq())
	}
	ps, _, _ := pm.Status(pID)
	rs, _, _ := rm.Status(rID)
	if ps != rs || rs != Holds {
		t.Fatalf("verdicts diverge: primary %v, replica %v", ps, rs)
	}

	// Replaying an already-applied seq must not rewind the counter.
	rm.ApplyReplay(nil, nil, false, 1)
	if rm.UpdateSeq() != pm.UpdateSeq() {
		t.Fatalf("stale replay rewound counter to %d", rm.UpdateSeq())
	}
}

// TestResetReanchors verifies Reset drops all registrations, burst
// state, and the backlog, rebinds the network, and keeps counters
// monotonic for ResumeSeq/ResumeUpdates.
func TestResetReanchors(t *testing.T) {
	g, nodes, links := line4()
	n := core.NewNetwork(g, core.Options{})
	m := New(n, 0)

	m.Register(Reachable{From: nodes[0], To: nodes[2]})
	m.Register(Reachable{From: nodes[1], To: nodes[3]})
	mustInsert(t, n, m, core.Rule{ID: 1, Source: nodes[0], Link: links[0],
		Match: ipnet.Interval{Lo: 0, Hi: 100}, Priority: 1})
	mustInsert(t, n, m, core.Rule{ID: 2, Source: nodes[1], Link: links[1],
		Match: ipnet.Interval{Lo: 0, Hi: 100}, Priority: 1})
	if m.LastSeq() == 0 {
		t.Fatal("expected at least one event before reset")
	}
	preSeq, preUpd := m.LastSeq(), m.UpdateSeq()

	g2, nodes2, _ := line4()
	n2 := core.NewNetwork(g2, core.Options{})
	m.Reset(n2)

	if m.NumRegistered() != 0 {
		t.Fatalf("registrations survived reset: %d", m.NumRegistered())
	}
	if rep := m.EventsSince(0); len(rep.Events) != 0 {
		t.Fatalf("backlog survived reset: %v", rep.Events)
	}
	if m.LastSeq() != preSeq || m.UpdateSeq() != preUpd {
		t.Fatalf("counters rewound: seq %d/%d upd %d/%d", m.LastSeq(), preSeq, m.UpdateSeq(), preUpd)
	}

	// The fresh-checkpoint counters only move forward.
	m.ResumeSeq(preSeq + 10)
	m.ResumeUpdates(preUpd + 10)
	m.ResumeSeq(1)
	m.ResumeUpdates(1)
	if m.LastSeq() != preSeq+10 || m.UpdateSeq() != preUpd+10 {
		t.Fatalf("resume counters: seq %d upd %d", m.LastSeq(), m.UpdateSeq())
	}

	// The monitor is live against the new network.
	id, st := m.Register(Reachable{From: nodes2[0], To: nodes2[1]})
	if st != Violated {
		t.Fatalf("fresh network status %v, want violated (no rules)", st)
	}
	ev := mustInsert(t, n2, m, core.Rule{ID: 1, Source: nodes2[0], Link: 0,
		Match: ipnet.Interval{Lo: 0, Hi: 100}, Priority: 1})
	if len(ev) != 1 || ev[0].ID != id || ev[0].Kind != Cleared {
		t.Fatalf("post-reset events: %v", ev)
	}
	if ev[0].Seq != preSeq+11 {
		t.Fatalf("post-reset event seq %d, want %d", ev[0].Seq, preSeq+11)
	}
}
