package server

import (
	"sort"
	"strconv"

	"deltanet/internal/metrics"
)

// Pipeline stage labels for the dnserve_update_stage_seconds histogram
// family, in pipeline order.
const (
	stageParse   = "parse"
	stageLock    = "lockwait"
	stageApply   = "apply"
	stageDirty   = "dirtymark"
	stageEval    = "evalfanout"
	stagePublish = "publish"
)

// serverMetrics holds the hot-path metric handles; everything else is
// registered as scrape-time funcs over the existing counters.
type serverMetrics struct {
	commands  *metrics.CounterVec
	stages    *metrics.HistogramVec
	updateDur *metrics.Histogram
}

// enableMetrics registers the server's full metric surface — engine
// sizes, every monitor Stats counter, connection/transport counters,
// the per-stage update-pipeline histograms, and (when configured) the
// journal and replica-lag gauges — with reg, and starts feeding the
// histograms. Applied by WithMetrics, after every other option, so the
// conditional series reflect the final configuration; the admin
// endpoint (AdminHandler) renders reg at /metrics.
func (s *Server) enableMetrics(reg *metrics.Registry) {
	m := &serverMetrics{
		commands:  reg.CounterVec("dnserve_commands_total", "Protocol commands handled, by verb.", "verb"),
		stages:    reg.HistogramVec("dnserve_update_stage_seconds", "Update pipeline stage latency: parse, lockwait, apply, dirtymark, evalfanout, publish.", "stage"),
		updateDur: reg.Histogram("dnserve_update_seconds", "End-to-end update pipeline latency (sum of traced stages)."),
	}
	// Pre-create the stage series so the full pipeline is visible on
	// /metrics from the first scrape, updates or not.
	for _, st := range []string{stageParse, stageLock, stageApply, stageDirty, stageEval, stagePublish} {
		m.stages.With(st)
	}

	// Engine sizes. The funcs run at scrape time from the admin
	// goroutine; engineSizes takes the engine read lock once.
	reg.GaugeFunc("dn_rules", "Rules currently installed in the data plane.", func() float64 {
		rules, _, _, _ := s.engineSizes()
		return float64(rules)
	})
	reg.GaugeFunc("dn_atoms", "Atoms (disjoint address ranges) currently live.", func() float64 {
		_, atoms, _, _ := s.engineSizes()
		return float64(atoms)
	})
	reg.GaugeFunc("dn_links", "Links in the topology.", func() float64 {
		_, _, links, _ := s.engineSizes()
		return float64(links)
	})
	reg.GaugeFunc("dn_nodes", "Nodes in the topology.", func() float64 {
		_, _, _, nodes := s.engineSizes()
		return float64(nodes)
	})

	// Monitor counters, read from the source of truth at scrape time.
	reg.GaugeFunc("dn_monitor_registered", "Standing invariants currently registered.", func() float64 {
		return float64(s.mon.NumRegistered())
	})
	reg.CounterFunc("dn_monitor_updates_total", "Deltas consumed by the monitor.", func() float64 {
		return float64(s.mon.Stats().Updates)
	})
	reg.CounterFunc("dn_monitor_evaluations_total", "Invariant re-evaluations triggered by deltas.", func() float64 {
		return float64(s.mon.Stats().Evaluations)
	})
	reg.CounterFunc("dn_monitor_skips_total", "Invariants spared by the dependency index.", func() float64 {
		return float64(s.mon.Stats().Skips)
	})
	reg.CounterFunc("dn_monitor_range_skips_total", "Skipped invariants that link granularity would have evaluated (atom-range sketch win).", func() float64 {
		return float64(s.mon.Stats().RangeSkips)
	})
	reg.CounterFunc("dn_monitor_events_total", "Verdict transitions emitted.", func() float64 {
		return float64(s.mon.Stats().Events)
	})
	reg.CounterFunc("dn_monitor_bursts_total", "Evaluation passes that coalesced at least one delta.", func() float64 {
		return float64(s.mon.Stats().Bursts)
	})
	reg.CounterFunc("dn_monitor_coalesced_total", "Deltas merged into bursts.", func() float64 {
		return float64(s.mon.Stats().Coalesced)
	})
	reg.GaugeFunc("dn_monitor_pending", "Deltas buffered awaiting a burst flush.", func() float64 {
		return float64(s.mon.Pending())
	})
	reg.CounterFunc("dn_monitor_loopfree_rescan_atoms_total", "Atoms re-walked by LoopFree's batch-aware violated-state clearing (vs a full scan per update).", func() float64 {
		return float64(s.mon.Stats().LoopRescanAtoms)
	})
	reg.GaugeFunc("dn_monitor_backlog_events", "Events currently retained in the replay backlog.", func() float64 {
		return float64(s.mon.BacklogLen())
	})
	reg.GaugeFuncVec("dn_monitor_index_shard_bits", "Dependency-index population per link shard (hot-shard skew signal).", "shard", func() []metrics.VecSample {
		pops := s.mon.Stats().IndexShardBits
		out := make([]metrics.VecSample, len(pops))
		for i, p := range pops {
			out[i] = metrics.VecSample{Label: strconv.Itoa(i), Value: float64(p)}
		}
		return out
	})

	// Connections and transport.
	reg.GaugeFunc("dnserve_connections_active", "Currently open client connections.", func() float64 {
		s.connMu.Lock()
		defer s.connMu.Unlock()
		return float64(len(s.conns))
	})
	reg.CounterFunc("dnserve_connections_total", "Client connections accepted.", func() float64 {
		return float64(s.connsTotal.Load())
	})
	reg.GaugeFunc("dnserve_watch_sessions", "Live watch event subscriptions.", func() float64 {
		return float64(s.mon.NumSubscribers())
	})
	reg.CounterFunc("dnserve_read_bytes_total", "Bytes read from clients.", func() float64 {
		return float64(s.bytesIn.Load())
	})
	reg.CounterFunc("dnserve_written_bytes_total", "Bytes written to clients.", func() float64 {
		return float64(s.bytesOut.Load())
	})
	reg.CounterFunc("dnserve_scanner_errors_total", "Connections torn down by scanner errors (over-long lines, read failures).", func() float64 {
		return float64(s.scanErrs.Load())
	})
	reg.CounterFunc("dnserve_slow_updates_total", "Updates exceeding the -slow-update threshold.", func() float64 {
		return float64(s.tr.slows())
	})

	// Binary ingestion front end (ingest.go). Registered unconditionally
	// — the ring starts lazily on the first dnbin handshake, so the
	// funcs guard on it; a flat-zero series is the "no binary clients
	// yet" signal, and the depth gauge draining to zero is the smoke
	// test's quiesce check.
	reg.GaugeFunc("dn_ingest_ring_depth", "Ops queued in the ingest ring awaiting the coalescer.", func() float64 {
		if r := s.ing.ring.Load(); r != nil {
			return float64(r.Depth())
		}
		return 0
	})
	reg.CounterFunc("dn_ingest_frames_total", "Binary protocol frames decoded.", func() float64 {
		return float64(s.ing.frames.Load())
	})
	reg.CounterFunc("dn_ingest_ops_total", "Ops accepted into the ingest ring.", func() float64 {
		return float64(s.ing.ops.Load())
	})
	reg.CounterFunc("dn_ingest_busy_total", "Busy frames sent to binary clients (ring-full backpressure events).", func() float64 {
		return float64(s.ing.busy.Load())
	})
	reg.CounterFunc("dn_ingest_batches_total", "Coalesced batches applied by the ingest consumer.", func() float64 {
		return float64(s.ing.batches.Load())
	})
	reg.CounterFunc("dn_ingest_adaptive_flushes_total", "Batches cut early because the next op's dirty-invariant set was disjoint.", func() float64 {
		return float64(s.ing.adaptive.Load())
	})
	reg.CounterFunc("dn_ingest_rejected_ops_total", "Ingested ops dropped at apply (bad ids, duplicates).", func() float64 {
		return float64(s.ing.rejected.Load())
	})

	// Replication surface: journal position/errors on a journaling
	// primary, lag gauges on a replica.
	if s.jrnl != nil {
		reg.GaugeFunc("dn_journal_end_offset", "Logical end offset of the update journal.", func() float64 {
			return float64(s.jrnl.End())
		})
		reg.CounterFunc("dn_journal_append_errors_total", "Journal appends that failed (updates applied but not journaled).", func() float64 {
			return float64(s.jrnlErrs.Load())
		})
	}
	if s.replicaOf != "" {
		reg.GaugeFunc("dn_replica_lag_bytes", "Journal bytes the replica has not yet applied (primary end - applied cursor).", func() float64 {
			return float64(s.replicaLagBytes())
		})
		reg.GaugeFunc("dn_replica_lag_seconds", "Age of the newest applied journal record when behind (0 when caught up).", func() float64 {
			return s.replicaLagSeconds()
		})
		reg.CounterFunc("dn_replica_reanchors_total", "Checkpoint re-anchors forced by journal truncation at the primary.", func() float64 {
			return float64(s.replanchors.Load())
		})
	}

	s.met = m
}

// engineSizes reads the data-plane size gauges under the engine read
// lock (one acquisition per scrape-time func).
func (s *Server) engineSizes() (rules, atoms, links, nodes int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.net.NumRules(), s.net.NumAtoms(), s.graph.NumLinks(), s.graph.NumNodes()
}

// countVerb bumps the per-verb command counter (no-op until
// EnableMetrics). Unknown verbs collapse into one "unknown" series so
// arbitrary client input cannot grow the label space.
func (s *Server) countVerb(verb string) {
	m := s.met
	if m == nil {
		return
	}
	if i := sort.SearchStrings(protocolCommands, verb); i >= len(protocolCommands) || protocolCommands[i] != verb {
		verb = "unknown"
	}
	m.commands.With(verb).Inc()
}

// observeStages feeds one trace record into the stage histograms (no-op
// until EnableMetrics). Engine-side stages are skipped on flush records
// (a flush has no parse or apply of its own) and monitor-side stages on
// records without an evaluation pass.
func (s *Server) observeStages(rec updateRecord) {
	m := s.met
	if m == nil {
		return
	}
	if rec.Verb != verbFlush {
		m.stages.With(stageParse).ObserveNs(rec.ParseNs)
		m.stages.With(stageLock).ObserveNs(rec.LockNs)
		m.stages.With(stageApply).ObserveNs(rec.ApplyNs)
	}
	if rec.HasEval {
		m.stages.With(stageDirty).ObserveNs(rec.DirtyNs)
		m.stages.With(stageEval).ObserveNs(rec.EvalNs)
		m.stages.With(stagePublish).ObserveNs(rec.PublishNs)
	}
	m.updateDur.ObserveNs(rec.TotalNs)
}
