package monitor

import (
	"fmt"
	"math/rand"
	"testing"

	"deltanet/internal/check"
	"deltanet/internal/core"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
)

// line4 builds a -> b -> c -> d and returns the graph, nodes, and links.
func line4() (*netgraph.Graph, []netgraph.NodeID, []netgraph.LinkID) {
	g := netgraph.New()
	var nodes []netgraph.NodeID
	for _, name := range []string{"a", "b", "c", "d"} {
		nodes = append(nodes, g.AddNode(name))
	}
	var links []netgraph.LinkID
	for i := 0; i+1 < len(nodes); i++ {
		links = append(links, g.AddLink(nodes[i], nodes[i+1]))
	}
	return g, nodes, links
}

func mustInsert(t *testing.T, n *core.Network, m *Monitor, r core.Rule) []Event {
	t.Helper()
	var d core.Delta
	if err := n.InsertRuleInto(r, &d); err != nil {
		t.Fatal(err)
	}
	return m.Apply(&d)
}

func mustRemove(t *testing.T, n *core.Network, m *Monitor, id core.RuleID) []Event {
	t.Helper()
	var d core.Delta
	if err := n.RemoveRuleInto(id, &d); err != nil {
		t.Fatal(err)
	}
	return m.Apply(&d)
}

// TestTransitions walks one invariant through violation and clearing and
// checks the events and cached status at each step.
func TestTransitions(t *testing.T) {
	g, nodes, links := line4()
	n := core.NewNetwork(g, core.Options{})
	m := New(n, 0)

	id, st := m.Register(Reachable{From: nodes[0], To: nodes[2]})
	if st != Violated {
		t.Fatalf("empty data plane: status %v, want violated", st)
	}

	// a->b alone does not reach c: no transition.
	ev := mustInsert(t, n, m, core.Rule{ID: 1, Source: nodes[0], Link: links[0],
		Match: ipnet.Interval{Lo: 0, Hi: 100}, Priority: 1})
	if len(ev) != 0 {
		t.Fatalf("partial path events: %v", ev)
	}

	// b->c completes the path: Cleared.
	ev = mustInsert(t, n, m, core.Rule{ID: 2, Source: nodes[1], Link: links[1],
		Match: ipnet.Interval{Lo: 0, Hi: 100}, Priority: 1})
	if len(ev) != 1 || ev[0].Kind != Cleared || ev[0].ID != id {
		t.Fatalf("clear events: %v", ev)
	}
	if st, _, _ := m.Status(id); st != Holds {
		t.Fatalf("status after clear: %v", st)
	}

	// Removing the first hop breaks it again: Violation.
	ev = mustRemove(t, n, m, 1)
	if len(ev) != 1 || ev[0].Kind != Violation || ev[0].ID != id {
		t.Fatalf("violation events: %v", ev)
	}
	if ev[0].Seq != 2 {
		t.Fatalf("event seq: %d, want 2", ev[0].Seq)
	}
}

// TestDependencySkipping verifies the incremental core: churn in one
// component must not re-evaluate invariants whose dependency sets live in
// another.
func TestDependencySkipping(t *testing.T) {
	g := netgraph.New()
	// Two disconnected 2-node components.
	a1, a2 := g.AddNode("a1"), g.AddNode("a2")
	b1, b2 := g.AddNode("b1"), g.AddNode("b2")
	la := g.AddLink(a1, a2)
	lb := g.AddLink(b1, b2)
	n := core.NewNetwork(g, core.Options{})
	m := New(n, 0)

	var d core.Delta
	if err := n.InsertRuleInto(core.Rule{ID: 1, Source: a1, Link: la,
		Match: ipnet.Interval{Lo: 0, Hi: 50}, Priority: 1}, &d); err != nil {
		t.Fatal(err)
	}
	if err := n.InsertRuleInto(core.Rule{ID: 2, Source: b1, Link: lb,
		Match: ipnet.Interval{Lo: 0, Hi: 50}, Priority: 1}, &d); err != nil {
		t.Fatal(err)
	}

	m.Register(Reachable{From: a1, To: a2})
	m.Register(Reachable{From: b1, To: b2})

	// Churn only component A.
	for i := 0; i < 10; i++ {
		mustInsert(t, n, m, core.Rule{ID: core.RuleID(100 + i), Source: a1, Link: la,
			Match: ipnet.Interval{Lo: uint64(100 + i), Hi: uint64(200 + i)}, Priority: 5})
	}
	// Component A's invariant depends only on la, B's only on lb: every
	// one of the 10 updates must evaluate A and skip B.
	st := m.Stats()
	if st.Evaluations != 10 || st.Skips != 10 {
		t.Fatalf("stats %+v: want 10 evaluations and 10 skips", st)
	}
	if got, _, _ := m.Status(1); got != Holds {
		t.Fatalf("component-B invariant status: %v", got)
	}
}

// TestUnregister: an unregistered invariant stops producing events and
// queries fail.
func TestUnregister(t *testing.T) {
	g, nodes, links := line4()
	n := core.NewNetwork(g, core.Options{})
	m := New(n, 0)
	id, _ := m.Register(Reachable{From: nodes[0], To: nodes[1]})
	if !m.Unregister(id) {
		t.Fatal("unregister known id failed")
	}
	if m.Unregister(id) {
		t.Fatal("double unregister succeeded")
	}
	if _, _, ok := m.Status(id); ok {
		t.Fatal("status of unregistered id")
	}
	if ev := mustInsert(t, n, m, core.Rule{ID: 1, Source: nodes[0], Link: links[0],
		Match: ipnet.Interval{Lo: 0, Hi: 10}, Priority: 1}); len(ev) != 0 {
		t.Fatalf("events after unregister: %v", ev)
	}
}

// TestSubscription: events reach subscribers; a full buffer drops rather
// than blocks; cancel closes the channel.
func TestSubscription(t *testing.T) {
	g, nodes, links := line4()
	n := core.NewNetwork(g, core.Options{})
	m := New(n, 0)
	m.Register(Reachable{From: nodes[0], To: nodes[1]})

	sub := m.Subscribe(1)
	done := make(chan []Event)
	go func() {
		var got []Event
		for ev := range sub.C {
			got = append(got, ev)
		}
		done <- got
	}()

	mustInsert(t, n, m, core.Rule{ID: 1, Source: nodes[0], Link: links[0],
		Match: ipnet.Interval{Lo: 0, Hi: 10}, Priority: 1}) // Cleared
	mustRemove(t, n, m, 1) // Violation
	sub.Cancel()
	sub.Cancel() // idempotent

	got := <-done
	if len(got)+int(sub.Dropped()) != 2 {
		t.Fatalf("delivered %d + dropped %d, want 2 total", len(got), sub.Dropped())
	}
	if len(got) == 0 {
		t.Fatal("everything dropped from an actively drained subscription")
	}
}

// TestSubscriberDrop: an undrained buffer of size 1 must drop the second
// event, not deadlock the update path.
func TestSubscriberDrop(t *testing.T) {
	g, nodes, links := line4()
	n := core.NewNetwork(g, core.Options{})
	m := New(n, 0)
	m.Register(Reachable{From: nodes[0], To: nodes[1]})
	sub := m.Subscribe(1)
	mustInsert(t, n, m, core.Rule{ID: 1, Source: nodes[0], Link: links[0],
		Match: ipnet.Interval{Lo: 0, Hi: 10}, Priority: 1})
	mustRemove(t, n, m, 1)
	if sub.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", sub.Dropped())
	}
	sub.Cancel()
}

// churnTopo builds a topology with cycles (so loops can form), dead ends
// (so black holes can form), and enough nodes for interesting queries:
// a ring 0..5 with chords and two stub nodes hanging off it.
func churnTopo() (*netgraph.Graph, []netgraph.NodeID, []netgraph.LinkID) {
	g := netgraph.New()
	var nodes []netgraph.NodeID
	for i := 0; i < 8; i++ {
		nodes = append(nodes, g.AddNode(fmt.Sprintf("n%d", i)))
	}
	var links []netgraph.LinkID
	addLink := func(a, b int) {
		links = append(links, g.AddLink(nodes[a], nodes[b]))
	}
	for i := 0; i < 6; i++ { // ring
		addLink(i, (i+1)%6)
	}
	addLink(0, 3) // chords
	addLink(4, 1)
	addLink(2, 6) // stubs
	addLink(5, 7)
	return g, nodes, links
}

// TestEquivalenceUnderChurn is the monitor's ground-truth test: under a
// randomized insert/remove/batch workload, after EVERY update, every
// cached verdict must equal a from-scratch evaluation of the same query.
func TestEquivalenceUnderChurn(t *testing.T) {
	for _, gc := range []bool{false, true} {
		gc := gc
		t.Run(fmt.Sprintf("gc=%v", gc), func(t *testing.T) {
			testEquivalenceUnderChurn(t, gc)
		})
	}
}

func testEquivalenceUnderChurn(t *testing.T, gc bool) {
	rng := rand.New(rand.NewSource(42))
	g, nodes, links := churnTopo()
	n := core.NewNetwork(g, core.Options{GC: gc})
	m := New(n, 0)

	sinks := map[netgraph.NodeID]bool{nodes[6]: true, nodes[7]: true}

	// One oracle per registered invariant: violated, from scratch?
	type regInv struct {
		id     ID
		spec   Spec
		oracle func() bool
	}
	var invs []regInv
	reg := func(s Spec, oracle func() bool) {
		id, _ := m.Register(s)
		invs = append(invs, regInv{id: id, spec: s, oracle: oracle})
	}
	for i := 0; i < 6; i++ {
		from, to := nodes[i], nodes[(i+3)%8]
		reg(Reachable{From: from, To: to}, func() bool {
			return check.Reachable(n, from, to).Empty()
		})
	}
	for i := 0; i < 4; i++ {
		from, to, via := nodes[i], nodes[(i+2)%6], nodes[(i+1)%6]
		reg(Waypoint{From: from, To: to, Via: via}, func() bool {
			return !check.Waypoint(n, from, to, via).Empty()
		})
	}
	ga := []netgraph.NodeID{nodes[0], nodes[1]}
	gb := []netgraph.NodeID{nodes[6], nodes[7]}
	reg(Isolated{GroupA: ga, GroupB: gb}, func() bool {
		return check.Isolated(n, ga, gb, nil) != nil
	})
	reg(LoopFree{}, func() bool {
		return len(check.FindLoopsAll(n)) > 0
	})
	reg(BlackHoleFree{Sinks: sinks}, func() bool {
		return len(check.FindBlackHoles(n, sinks)) > 0
	})

	verify := func(step int, what string) {
		t.Helper()
		for _, inv := range invs {
			got, detail, ok := m.Status(inv.id)
			if !ok {
				t.Fatalf("step %d: invariant %d vanished", step, inv.id)
			}
			want := Holds
			if inv.oracle() {
				want = Violated
			}
			if got != want {
				t.Fatalf("step %d (%s): %v: monitor says %v (%s), scratch says %v",
					step, what, inv.spec, got, detail, want)
			}
		}
	}

	var live []core.RuleID
	nextID := core.RuleID(1)
	randomRule := func() core.Rule {
		l := links[rng.Intn(len(links))]
		src := g.Link(l).Src
		lo := uint64(rng.Intn(1 << 12))
		r := core.Rule{
			ID:       nextID,
			Source:   src,
			Link:     l,
			Match:    ipnet.Interval{Lo: lo, Hi: lo + 1 + uint64(rng.Intn(1<<10))},
			Priority: core.Priority(rng.Intn(8)),
		}
		if rng.Intn(8) == 0 { // occasional explicit drop rule
			r.Link = netgraph.NoLink
		}
		nextID++
		return r
	}

	var d core.Delta
	for step := 0; step < 250; step++ {
		switch {
		case step%10 == 9: // atomic batch of inserts and removals
			var ops []core.BatchOp
			removed := map[core.RuleID]bool{}
			for k := 0; k < 1+rng.Intn(5); k++ {
				if len(live) > 0 && rng.Intn(2) == 0 {
					id := live[rng.Intn(len(live))]
					if removed[id] {
						continue
					}
					removed[id] = true
					ops = append(ops, core.RemoveOp(id))
				} else {
					r := randomRule()
					live = append(live, r.ID)
					ops = append(ops, core.InsertOp(r))
				}
			}
			if err := n.ApplyBatch(ops, &d, 0); err != nil {
				t.Fatal(err)
			}
			var kept []core.RuleID
			for _, id := range live {
				if !removed[id] {
					kept = append(kept, id)
				}
			}
			live = kept
			m.Apply(&d)
			verify(step, "batch")
		case len(live) > 0 && rng.Intn(5) < 2: // removal
			i := rng.Intn(len(live))
			id := live[i]
			live = append(live[:i], live[i+1:]...)
			if err := n.RemoveRuleInto(id, &d); err != nil {
				t.Fatal(err)
			}
			m.Apply(&d)
			verify(step, "remove")
		default: // insertion, via the caller-ran-the-loop-check path the
			// Checker and server use
			r := randomRule()
			live = append(live, r.ID)
			if err := n.InsertRuleInto(r, &d); err != nil {
				t.Fatal(err)
			}
			m.ApplyWithLoops(&d, check.FindLoopsDelta(n, &d), true)
			verify(step, "insert")
		}
	}

	// The workload must have exercised the incremental machinery, not just
	// re-evaluated everything every time.
	st := m.Stats()
	if st.Skips == 0 {
		t.Fatalf("stats %+v: dependency tracking never skipped anything", st)
	}
	if st.Events == 0 {
		t.Fatalf("stats %+v: churn produced no verdict transitions", st)
	}

	// RecheckAll agrees with the incrementally maintained verdicts.
	if ev := m.RecheckAll(); len(ev) != 0 {
		t.Fatalf("RecheckAll found stale verdicts: %v", ev)
	}
}

// TestConcurrentSubscribersAndQueries exercises the monitor's lock
// discipline under -race: updates stream while subscribers drain and
// other goroutines query.
func TestConcurrentSubscribersAndQueries(t *testing.T) {
	g, nodes, links := line4()
	n := core.NewNetwork(g, core.Options{})
	m := New(n, 0)
	id, _ := m.Register(Reachable{From: nodes[0], To: nodes[1]})
	m.Register(LoopFree{})

	sub := m.Subscribe(16)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range sub.C {
		}
	}()
	queries := make(chan struct{})
	go func() {
		defer close(queries)
		for i := 0; i < 200; i++ {
			m.Status(id)
			m.Stats()
			m.NumRegistered()
		}
	}()

	for i := 0; i < 100; i++ {
		mustInsert(t, n, m, core.Rule{ID: core.RuleID(i + 1), Source: nodes[0], Link: links[0],
			Match: ipnet.Interval{Lo: 0, Hi: 10}, Priority: 1})
		mustRemove(t, n, m, core.RuleID(i+1))
	}
	<-queries
	sub.Cancel()
	<-drained
}
