package monitor

import (
	"fmt"
	"testing"

	"deltanet/internal/check"
	"deltanet/internal/core"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
)

// trunkFixture builds the prefix-locality shape atom granularity exists
// for: leaves src_i and dst_i joined through a shared trunk A -> B, each
// leaf pair exchanging only its own /slice of the address space, plus a
// detour link A -> C churn can move one slice onto. Every reach(src_i,
// dst_i) invariant depends on the trunk link, but only on its own
// slice's atoms there.
type trunkFixture struct {
	net        *core.Network
	graph      *netgraph.Graph
	src, dst   []netgraph.NodeID
	a, b, c    netgraph.NodeID
	aToB, aToC netgraph.LinkID
	width      uint64
}

func buildTrunk(t *testing.T, leaves int, opts core.Options) *trunkFixture {
	t.Helper()
	g := netgraph.New()
	f := &trunkFixture{graph: g, width: 1 << 12}
	f.a, f.b, f.c = g.AddNode("A"), g.AddNode("B"), g.AddNode("C")
	f.aToB = g.AddLink(f.a, f.b)
	f.aToC = g.AddLink(f.a, f.c)
	n := core.NewNetwork(g, opts)
	f.net = n
	var d core.Delta
	insert := func(r core.Rule) {
		t.Helper()
		if err := n.InsertRuleInto(r, &d); err != nil {
			t.Fatal(err)
		}
	}
	insert(core.Rule{ID: 1, Source: f.a, Link: f.aToB,
		Match: ipnet.Interval{Lo: 0, Hi: uint64(leaves) * f.width}, Priority: 1})
	for i := 0; i < leaves; i++ {
		s := g.AddNode(fmt.Sprintf("src%d", i))
		e := g.AddNode(fmt.Sprintf("dst%d", i))
		f.src, f.dst = append(f.src, s), append(f.dst, e)
		slice := ipnet.Interval{Lo: uint64(i) * f.width, Hi: uint64(i+1) * f.width}
		insert(core.Rule{ID: core.RuleID(10 + 2*i), Source: s, Link: g.AddLink(s, f.a),
			Match: slice, Priority: 1})
		insert(core.Rule{ID: core.RuleID(11 + 2*i), Source: f.b, Link: g.AddLink(f.b, e),
			Match: slice, Priority: 1})
	}
	return f
}

// detour toggles a high-priority rule at A steering leaf j's slice onto
// the dead-end detour link (on=true) or back (on=false), applying the
// delta to every monitor given.
func (f *trunkFixture) detour(t *testing.T, j int, on bool, monitors ...*Monitor) {
	t.Helper()
	var d core.Delta
	id := core.RuleID(1000 + j)
	if on {
		err := f.net.InsertRuleInto(core.Rule{ID: id, Source: f.a, Link: f.aToC,
			Match: ipnet.Interval{Lo: uint64(j) * f.width, Hi: uint64(j+1) * f.width}, Priority: 99}, &d)
		if err != nil {
			t.Fatal(err)
		}
	} else if err := f.net.RemoveRuleInto(id, &d); err != nil {
		t.Fatal(err)
	}
	for _, m := range monitors {
		m.Apply(&d)
	}
}

// verifyOracle compares every invariant's cached verdict against a
// from-scratch fixpoint.
func (f *trunkFixture) verifyOracle(t *testing.T, m *Monitor, ids []ID) {
	t.Helper()
	for i, id := range ids {
		r := check.ReachFrom(f.net, f.src[i], nil)
		want := Holds
		if int(f.dst[i]) >= len(r) || r[f.dst[i]] == nil || r[f.dst[i]].Empty() {
			want = Violated
		}
		got, _, ok := m.Status(id)
		if !ok {
			t.Fatalf("invariant %d lost", id)
		}
		if got != want {
			t.Fatalf("leaf %d: got %v, oracle says %v", i, got, want)
		}
	}
}

// TestAtomGranularSkipsRangeDisjointChurn is the tentpole's acceptance
// shape: every invariant's dependency set contains the trunk link, so
// link-granular dirtiness re-evaluates all of them on every trunk delta,
// while atom-granular dirtiness re-evaluates only the one whose slice
// the delta actually moves — with verdicts identical to the oracle and
// the difference visible in the range-skip counter.
func TestAtomGranularSkipsRangeDisjointChurn(t *testing.T) {
	const leaves = 8
	f := buildTrunk(t, leaves, core.Options{})

	atom := New(f.net, 0)
	link := New(f.net, 0)
	link.SetLinkGranular(true)
	var atomIDs, linkIDs []ID
	for i := 0; i < leaves; i++ {
		s := Reachable{From: f.src[i], To: f.dst[i]}
		ai, st := atom.Register(s)
		if st != Holds {
			t.Fatalf("leaf %d not reachable at registration", i)
		}
		li, _ := link.Register(s)
		atomIDs, linkIDs = append(atomIDs, ai), append(linkIDs, li)
	}

	const rounds = 3
	for r := 0; r < rounds; r++ {
		for j := 0; j < leaves; j++ {
			f.detour(t, j, true, atom, link)
			f.verifyOracle(t, atom, atomIDs)
			f.verifyOracle(t, link, linkIDs)
			f.detour(t, j, false, atom, link)
			f.verifyOracle(t, atom, atomIDs)
			f.verifyOracle(t, link, linkIDs)
		}
	}

	as, ls := atom.Stats(), link.Stats()
	updates := uint64(rounds * leaves * 2)
	if ls.Evaluations != updates*leaves {
		t.Fatalf("link-granular evaluated %d, want %d (all invariants per trunk delta)",
			ls.Evaluations, updates*leaves)
	}
	if as.Evaluations != updates {
		t.Fatalf("atom-granular evaluated %d, want %d (one invariant per trunk delta)",
			as.Evaluations, updates)
	}
	if as.RangeSkips != updates*(leaves-1) {
		t.Fatalf("range-skips %d, want %d", as.RangeSkips, updates*(leaves-1))
	}
	if as.Skips <= ls.Skips {
		t.Fatalf("atom-granular skips %d not above link-granular %d", as.Skips, ls.Skips)
	}
}

// waypointFixture is the split/merge-stability shape: all a -> b traffic
// traverses the waypoint m, with a dormant bypass h -> x -> b that churn
// can wake up for a sub-range of an existing atom — so the waking delta
// touches only atoms minted (or recycled) after the invariant's last
// evaluation, and any sketch trusting raw atom ids would skip it.
type waypointFixture struct {
	net              *core.Network
	a, h, m, b, x    netgraph.NodeID
	hToM, hToX, xToB netgraph.LinkID
}

func buildWaypoint(t *testing.T, opts core.Options) *waypointFixture {
	t.Helper()
	g := netgraph.New()
	f := &waypointFixture{}
	f.a, f.h, f.m, f.b, f.x =
		g.AddNode("a"), g.AddNode("h"), g.AddNode("m"), g.AddNode("b"), g.AddNode("x")
	aToH := g.AddLink(f.a, f.h)
	f.hToM = g.AddLink(f.h, f.m)
	mToB := g.AddLink(f.m, f.b)
	f.hToX = g.AddLink(f.h, f.x)
	f.xToB = g.AddLink(f.x, f.b)
	f.net = core.NewNetwork(g, opts)
	var d core.Delta
	all := ipnet.Interval{Lo: 0, Hi: 4096}
	for i, r := range []core.Rule{
		{ID: 1, Source: f.a, Link: aToH, Match: all, Priority: 1},
		{ID: 2, Source: f.h, Link: f.hToM, Match: all, Priority: 1},
		{ID: 3, Source: f.m, Link: mToB, Match: all, Priority: 1},
		{ID: 4, Source: f.x, Link: f.xToB, Match: all, Priority: 1},
	} {
		if err := f.net.InsertRuleInto(r, &d); err != nil {
			t.Fatalf("rule %d: %v", i, err)
		}
	}
	return f
}

// TestRangeSketchSplitStability: after the invariant's evaluation, a new
// rule splits an existing atom and moves only the split-minted id onto
// the bypass. The id is absent from every recorded sketch — only the
// atom-birth watermark makes the monitor re-evaluate. Skipping here
// would leave the waypoint invariant reporting Holds while packets
// bypass the waypoint.
func TestRangeSketchSplitStability(t *testing.T) {
	f := buildWaypoint(t, core.Options{})
	m := New(f.net, 0)
	id, st := m.Register(Waypoint{From: f.a, To: f.b, Via: f.m})
	if st != Holds {
		t.Fatalf("waypoint should hold at registration, got %v", st)
	}

	// [1000, 2000) splits the [0, 4096) atom; the delta moves only the
	// new ids, which no sketch has seen.
	var d core.Delta
	err := f.net.InsertRuleInto(core.Rule{ID: 99, Source: f.h, Link: f.hToX,
		Match: ipnet.Interval{Lo: 1000, Hi: 2000}, Priority: 9}, &d)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.NewAtoms) == 0 {
		t.Fatal("expected the insertion to split atoms")
	}
	m.Apply(&d)

	if got, _, _ := m.Status(id); got != Violated {
		t.Fatalf("split-minted atom bypassed the waypoint but invariant reports %v "+
			"(range sketch skipped an atom born after its evaluation)", got)
	}
	if st := m.Stats(); st.Evaluations != 1 {
		t.Fatalf("expected exactly one re-evaluation, got %d", st.Evaluations)
	}
}

// TestRangeSketchGCRecycleStability is the merge half: with atom GC on,
// a removal merges atoms and recycles their ids, and a later insertion
// reuses a recycled id for a completely different interval — one that
// now matters to the invariant. The recycled id is below the invariant's
// id watermark and absent from its sketches; only the per-atom
// allocation stamp makes the monitor re-evaluate.
func TestRangeSketchGCRecycleStability(t *testing.T) {
	f := buildWaypoint(t, core.Options{GC: true})
	var d core.Delta
	// An unrelated high-range rule mints two atoms the invariant never
	// looks at...
	err := f.net.InsertRuleInto(core.Rule{ID: 50, Source: f.x, Link: f.xToB,
		Match: ipnet.Interval{Lo: 10000, Hi: 20000}, Priority: 5}, &d)
	if err != nil {
		t.Fatal(err)
	}

	m := New(f.net, 0)
	id, st := m.Register(Waypoint{From: f.a, To: f.b, Via: f.m})
	if st != Holds {
		t.Fatalf("waypoint should hold at registration, got %v", st)
	}

	// ...whose removal merges them away and frees their ids...
	if err := f.net.RemoveRuleInto(50, &d); err != nil {
		t.Fatal(err)
	}
	if f.net.Merges() == 0 {
		t.Fatal("expected GC to merge atoms")
	}
	m.Apply(&d)

	// ...so the bypass rule's split reuses a recycled id for [1000,2000).
	maxBefore := f.net.MaxAtomID()
	err = f.net.InsertRuleInto(core.Rule{ID: 99, Source: f.h, Link: f.hToX,
		Match: ipnet.Interval{Lo: 1000, Hi: 2000}, Priority: 9}, &d)
	if err != nil {
		t.Fatal(err)
	}
	if f.net.MaxAtomID() != maxBefore {
		t.Fatal("expected the split to recycle freed atom ids, not mint new ones")
	}
	m.Apply(&d)

	if got, _, _ := m.Status(id); got != Violated {
		t.Fatalf("recycled atom bypassed the waypoint but invariant reports %v "+
			"(range sketch trusted a recycled atom id)", got)
	}
}
