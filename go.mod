module deltanet

go 1.24
