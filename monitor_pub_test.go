package deltanet

import (
	"testing"
)

// chain3 builds a -> b -> c and returns the checker, switches, and links.
func chain3(t *testing.T) (*Checker, [3]SwitchID, [2]LinkID) {
	t.Helper()
	c := New()
	a := c.AddSwitch("a")
	b := c.AddSwitch("b")
	d := c.AddSwitch("c")
	return c, [3]SwitchID{a, b, d}, [2]LinkID{c.AddLink(a, b), c.AddLink(b, d)}
}

// TestMonitorThroughChecker: invariants registered on Checker.Monitor()
// produce transition events in every Report without further plumbing.
func TestMonitorThroughChecker(t *testing.T) {
	c, sw, _ := chain3(t)
	m := c.Monitor()
	if m != c.Monitor() {
		t.Fatal("Monitor() not idempotent")
	}
	id, st := m.Register(WatchReachable(sw[0], sw[2]))
	if st != InvariantViolated {
		t.Fatalf("initial status: %v", st)
	}

	rep, err := c.InsertPrefixRule(1, sw[0], 0, "10.0.0.0/8", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) != 0 {
		t.Fatalf("half a path caused events: %v", rep.Events)
	}
	rep, err = c.InsertPrefixRule(2, sw[1], 1, "10.0.0.0/8", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) != 1 || rep.Events[0].Kind != MonitorCleared || rep.Events[0].ID != id {
		t.Fatalf("events: %v", rep.Events)
	}

	rep, err = c.RemoveRule(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) != 1 || rep.Events[0].Kind != MonitorViolation {
		t.Fatalf("events after remove: %v", rep.Events)
	}
}

// TestMonitorThroughBatch: one atomic batch reports the transitions of
// its merged delta in BatchReport.Events.
func TestMonitorThroughBatch(t *testing.T) {
	c, sw, links := chain3(t)
	m := c.Monitor()
	m.Register(WatchReachable(sw[0], sw[2]))
	m.Register(WatchWaypoint(sw[0], sw[2], sw[1]))
	m.Register(WatchLoopFree())
	m.Register(WatchBlackHoleFree(map[SwitchID]bool{sw[2]: true}))
	m.Register(WatchIsolated([]SwitchID{sw[0]}, []SwitchID{sw[2]}))

	prefix := MustParseInterval(t, "10.0.0.0/8")
	rep, err := c.ApplyBatch([]BatchOp{
		InsertOp(Rule{ID: 1, Source: sw[0], Link: links[0], Match: prefix, Priority: 1}),
		InsertOp(Rule{ID: 2, Source: sw[1], Link: links[1], Match: prefix, Priority: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Reachable clears; Isolated(a, c) becomes violated in the same batch.
	var cleared, violated int
	for _, ev := range rep.Events {
		switch ev.Kind {
		case MonitorCleared:
			cleared++
		case MonitorViolation:
			violated++
		}
	}
	if cleared != 1 || violated != 1 {
		t.Fatalf("batch events: %v", rep.Events)
	}
}

// MustParseInterval converts a CIDR string for test literals.
func MustParseInterval(t *testing.T, cidr string) Interval {
	t.Helper()
	p, err := ParsePrefix(cidr)
	if err != nil {
		t.Fatal(err)
	}
	return p.Interval()
}

// TestMonitorBurstThroughChecker: WithBurst coalesces updates behind the
// public API — Report.Events stays empty mid-burst, and the flush (here
// count-triggered) emits events carrying the coalesced update range.
func TestMonitorBurstThroughChecker(t *testing.T) {
	c := New(WithBurst(2, 0))
	a := c.AddSwitch("a")
	b := c.AddSwitch("b")
	l := c.AddLink(a, b)
	m := c.Monitor()
	id, st := m.Register(WatchReachable(a, b))
	if st != InvariantViolated {
		t.Fatalf("initial status: %v", st)
	}

	rep, err := c.InsertPrefixRule(1, a, l, "10.0.0.0/8", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) != 0 {
		t.Fatalf("mid-burst report carried events: %v", rep.Events)
	}
	if m.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", m.Pending())
	}
	rep, err = c.InsertPrefixRule(2, a, l, "11.0.0.0/8", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) != 1 || rep.Events[0].ID != id || rep.Events[0].Kind != MonitorCleared {
		t.Fatalf("flush events: %v", rep.Events)
	}
	if rep.Events[0].FirstUpdate != 1 || rep.Events[0].LastUpdate != 2 {
		t.Fatalf("update range %d:%d, want 1:2",
			rep.Events[0].FirstUpdate, rep.Events[0].LastUpdate)
	}

	// An explicit flush drains a partial burst. Removing both rules takes
	// two updates; the second completes a burst and auto-flushes, so do
	// one removal (pending), flush it explicitly, then the other.
	if _, err := c.RemoveRule(1); err != nil {
		t.Fatal(err)
	}
	if ev := m.Flush(); len(ev) != 0 {
		t.Fatalf("flush after losing one of two parallel rules: %v", ev)
	}
	if _, err := c.RemoveRule(2); err != nil {
		t.Fatal(err)
	}
	if ev := m.Flush(); len(ev) != 1 || ev[0].Kind != MonitorViolation {
		t.Fatalf("explicit flush: %v", ev)
	}
}

// TestCheckerSnapshotRestoreInvariants: the public kill/restart path —
// Snapshot/SnapshotInvariants on a live checker, Restore/
// RestoreInvariants into a fresh one over the same topology — brings
// every standing invariant back with the verdict a from-scratch
// evaluation gives, and the restored monitor keeps checking
// incrementally.
func TestCheckerSnapshotRestoreInvariants(t *testing.T) {
	c, sw, _ := chain3(t)
	if c.SnapshotInvariants() != nil {
		t.Fatal("SnapshotInvariants before Monitor() should be nil")
	}
	m := c.Monitor()
	m.Register(WatchReachable(sw[0], sw[2]))
	m.Register(WatchWaypoint(sw[0], sw[2], sw[1]))
	m.Register(WatchLoopFree())
	m.Register(WatchBlackHoleFree(map[SwitchID]bool{sw[2]: true}))
	if _, err := c.InsertPrefixRule(1, sw[0], 0, "10.0.0.0/8", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := c.InsertPrefixRule(2, sw[1], 1, "10.0.0.0/8", 10); err != nil {
		t.Fatal(err)
	}

	rules := c.Snapshot()
	specs := c.SnapshotInvariants()
	if len(specs) != 4 {
		t.Fatalf("SnapshotInvariants: %d lines, want 4: %q", len(specs), specs)
	}
	for _, line := range specs {
		inv, err := ParseInvariant(line)
		if err != nil {
			t.Fatalf("ParseInvariant(%q): %v", line, err)
		}
		if got := FormatInvariant(inv); got != line {
			t.Fatalf("round trip %q -> %q", line, got)
		}
	}

	// "Restart": fresh checker, same topology, restored rules + specs.
	c2, _, _ := chain3(t)
	if err := c2.Restore(rules); err != nil {
		t.Fatal(err)
	}
	if err := c2.RestoreInvariants(specs); err != nil {
		t.Fatal(err)
	}
	want := c.Monitor().Invariants()
	got := c2.Monitor().Invariants()
	if len(got) != len(want) {
		t.Fatalf("restored %d invariants, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Status != want[i].Status || FormatInvariant(got[i].Spec) != FormatInvariant(want[i].Spec) {
			t.Fatalf("invariant %d: %v %q, want %v %q", i,
				got[i].Status, FormatInvariant(got[i].Spec),
				want[i].Status, FormatInvariant(want[i].Spec))
		}
	}

	// Still incremental after restore: breaking the path fires events.
	rep, err := c2.RemoveRule(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) == 0 {
		t.Fatal("restored monitor emitted no events on a breaking update")
	}

	// A bad line stops the restore with an error.
	if err := c2.RestoreInvariants([]string{"bogus 1 2"}); err == nil {
		t.Fatal("RestoreInvariants accepted garbage")
	}
}
